#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ferex::util {

namespace {

std::size_t detect_pool_width() noexcept {
  // Read once at startup, before any worker exists — the lone getenv is
  // not a concurrency hazard here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("FEREX_POOL_WIDTH")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 512) {
      return static_cast<std::size_t>(v);
    }
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local bool tls_pool_worker = false;

/// Stable participant index: 0 for the submitter, 1..W for the workers
/// (set once per worker at spawn). Affine jobs use it to map lanes to
/// threads consistently across calls.
thread_local std::size_t tls_participant = 0;

/// One fork/join job: an atomic work index every participating thread
/// (workers + the submitter) drains, plus an active-participant count the
/// submitter waits on. Lives on the submitter's stack for its duration.
///
/// Two schedules share the struct. Dynamic (lanes == 0): items are
/// claimed from the shared `next` cursor — pure work stealing. Affine
/// (lanes > 0): item i belongs to lane i % lanes and participant p
/// drains lane p first, then steals from the other lanes; `next` then
/// counts *claimed* items so the workers' wait predicate and the
/// error-stop path stay identical across both schedules.
///
/// Concurrency: `fn`, `n`, `lanes` are set once before publication and
/// immutable after; the cursors and `active` are atomics (no capability
/// needed); only `first_error` takes a lock.
struct Job {
  Job(const std::function<void(std::size_t)>& f, std::size_t count,
      std::size_t lane_count)
      : fn(&f), n(count), lanes(lane_count) {
    if (lanes > 0) {
      // value-initialized -> every lane cursor starts at 0
      lane_next = std::make_unique<std::atomic<std::size_t>[]>(lanes);
    }
  }
  const std::function<void(std::size_t)>* fn;
  std::size_t n;
  std::size_t lanes;  ///< 0 = dynamic schedule
  std::unique_ptr<std::atomic<std::size_t>[]> lane_next;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  Mutex error_mutex;
  std::exception_ptr first_error GUARDED_BY(error_mutex);
};

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn,
           bool affine) {
    // One top-level job at a time; a second caller runs inline rather
    // than queueing (it makes progress either way, and results never
    // depend on the schedule).
    if (!submit_mutex_.try_lock()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    MutexLock submit(submit_mutex_, adopt_lock);
    std::call_once(spawn_once_,
                   [this]() REQUIRES(submit_mutex_) { spawn_workers(); });
    if (workers_.empty()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }

    // Affine lanes map onto the participants that can actually exist:
    // the submitter (lane 0) plus the workers that really spawned.
    Job job(fn, n, affine ? workers_.size() + 1 : 0);
    {
      MutexLock lock(job_mutex_);
      job.active.store(1, std::memory_order_relaxed);  // the submitter
      job_ = &job;
    }
    job_cv_.notify_all();
    // The submitter participates too. While draining it counts as a pool
    // participant, so a nested parallel_for issued by one of its items
    // takes the inline path up front instead of re-entering run() and
    // try-locking a mutex this thread already owns (which would be UB).
    tls_pool_worker = true;
    drain(job, /*participant=*/0);
    tls_pool_worker = false;
    {
      MutexLock lock(job_mutex_);
      job.active.fetch_sub(1, std::memory_order_acq_rel);
      done_cv_.wait(job_mutex_, [&] {
        return job.active.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;  // workers re-check under job_mutex_, so the stack
                       // Job cannot be touched after this point
    }
    std::exception_ptr error;
    {
      // Every participant has deregistered, but take the error lock
      // anyway: it is uncontended here and keeps the GUARDED_BY story
      // airtight for the analysis. Acquired while submit_mutex_ is
      // still held, but no ACQUIRED_BEFORE edge is declarable: Job is
      // a per-call stack object that cannot name WorkerPool's members
      // in an attribute. It is a strict leaf — nothing is ever
      // acquired under it — so the undeclared nesting is waived.
      MutexLock lock(job.error_mutex);  // ferex-lint: allow(lock-order-undeclared)
      error = job.first_error;
    }
    if (error) std::rethrow_exception(error);
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      MutexLock lock(job_mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    // Joining under submit_mutex_ is deadlock-free (workers never take
    // it) and satisfies workers_'s capability for the analysis.
    MutexLock submit(submit_mutex_);
    for (auto& t : workers_) t.join();
  }

  void spawn_workers() REQUIRES(submit_mutex_) {
    const std::size_t width = pool_width();
    if (width <= 1) return;
    workers_.reserve(width - 1);
    try {
      for (std::size_t w = 1; w < width; ++w) {
        workers_.emplace_back([this, w] { worker_loop(w); });
      }
    } catch (const std::system_error&) {
      // Thread spawn failed (resource exhaustion): run with however many
      // workers did start; zero means every call drains inline.
    }
  }

  void worker_loop(std::size_t participant) {
    tls_pool_worker = true;
    tls_participant = participant;
    for (;;) {
      Job* job = nullptr;
      {
        MutexLock lock(job_mutex_);
        job_cv_.wait(job_mutex_, [&]() REQUIRES(job_mutex_) {
          return stop_ ||
                 (job_ != nullptr &&
                  job_->next.load(std::memory_order_relaxed) < job_->n);
        });
        if (stop_) return;
        job = job_;
        // Registered under the lock: the submitter cannot retire the job
        // until this participant drains and deregisters.
        job->active.fetch_add(1, std::memory_order_relaxed);
      }
      drain(*job, tls_participant);
      {
        MutexLock lock(job_mutex_);
        if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          done_cv_.notify_all();
        }
      }
    }
  }

  static void record_error(Job& job) {
    MutexLock lock(job.error_mutex);
    if (!job.first_error) job.first_error = std::current_exception();
    // Stop handing out work once something failed (both schedules gate
    // their claims on next < n).
    job.next.store(job.n, std::memory_order_relaxed);
  }

  static void drain(Job& job, std::size_t participant) {
    if (job.lanes > 0) {
      drain_affine(job, participant);
      return;
    }
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i);
      } catch (...) {
        record_error(job);
      }
    }
  }

  /// Affine drain: own lane first (items participant, participant +
  /// lanes, ...), then sweep the other lanes so a stalled participant
  /// never strands its items. Lane cursors are strided claim counters;
  /// `next` tracks total claims for the wait predicate and error stop.
  static void drain_affine(Job& job, std::size_t participant) {
    for (std::size_t offset = 0; offset < job.lanes; ++offset) {
      const std::size_t lane = (participant + offset) % job.lanes;
      for (;;) {
        if (job.next.load(std::memory_order_relaxed) >= job.n) return;
        const std::size_t stride =
            job.lane_next[lane].fetch_add(1, std::memory_order_relaxed);
        const std::size_t i = lane + stride * job.lanes;
        if (i >= job.n) break;  // lane exhausted: move to the next one
        job.next.fetch_add(1, std::memory_order_relaxed);
        try {
          (*job.fn)(i);
        } catch (...) {
          record_error(job);
          return;
        }
      }
    }
  }

  /// Serializes top-level jobs; always taken before job_mutex_.
  Mutex submit_mutex_ ACQUIRED_BEFORE(job_mutex_);
  Mutex job_mutex_;  ///< guards job_ / stop_ and both CVs
  /// _any variants: they wait directly on the annotated Mutex.
  std::condition_variable_any job_cv_;   ///< workers wait here for a job
  std::condition_variable_any done_cv_;  ///< submitter waits for fan-in
  Job* job_ GUARDED_BY(job_mutex_) = nullptr;
  bool stop_ GUARDED_BY(job_mutex_) = false;
  std::once_flag spawn_once_;
  std::vector<std::thread> workers_ GUARDED_BY(submit_mutex_);
};

}  // namespace

std::size_t pool_width() noexcept {
  static const std::size_t width = detect_pool_width();
  return width;
}

std::size_t worker_count(std::size_t jobs) noexcept {
  return std::max<std::size_t>(1, std::min(pool_width(), jobs));
}

bool on_pool_worker() noexcept { return tls_pool_worker; }

namespace {

void run_pooled(std::size_t n, const std::function<void(std::size_t)>& fn,
                bool affine) {
  if (n == 0) return;
  if (n == 1 || pool_width() == 1 || tls_pool_worker) {
    // Single item, single-threaded host, or a nested call from inside a
    // pool worker: run inline (nested fan-out would deadlock-prone-ly
    // contend for the one pool; every call site is schedule-invariant).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::instance().run(n, fn, affine);
}

}  // namespace

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  run_pooled(n, fn, /*affine=*/false);
}

void parallel_for_affine(std::size_t n,
                         const std::function<void(std::size_t)>& fn) {
  run_pooled(n, fn, /*affine=*/true);
}

}  // namespace ferex::util
