#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace ferex::util {

namespace {

std::size_t detect_pool_width() noexcept {
  if (const char* env = std::getenv("FEREX_POOL_WIDTH")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 512) {
      return static_cast<std::size_t>(v);
    }
  }
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

thread_local bool tls_pool_worker = false;

/// One fork/join job: an atomic work index every participating thread
/// (workers + the submitter) drains, plus an active-participant count the
/// submitter waits on. Lives on the submitter's stack for its duration.
struct Job {
  Job(const std::function<void(std::size_t)>& f, std::size_t count)
      : fn(&f), n(count) {}
  const std::function<void(std::size_t)>* fn;
  std::size_t n;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> active{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
};

class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    // One top-level job at a time; a second caller runs inline rather
    // than queueing (it makes progress either way, and results never
    // depend on the schedule).
    std::unique_lock<std::mutex> submit(submit_mutex_, std::try_to_lock);
    if (!submit.owns_lock()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::call_once(spawn_once_, [this] { spawn_workers(); });
    if (workers_.empty()) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }

    Job job(fn, n);
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      job.active.store(1, std::memory_order_relaxed);  // the submitter
      job_ = &job;
    }
    job_cv_.notify_all();
    // The submitter participates too. While draining it counts as a pool
    // participant, so a nested parallel_for issued by one of its items
    // takes the inline path up front instead of re-entering run() and
    // try-locking a mutex this thread already owns (which would be UB).
    tls_pool_worker = true;
    drain(job);
    tls_pool_worker = false;
    {
      std::unique_lock<std::mutex> lock(job_mutex_);
      job.active.fetch_sub(1, std::memory_order_acq_rel);
      done_cv_.wait(lock, [&] {
        return job.active.load(std::memory_order_acquire) == 0;
      });
      job_ = nullptr;  // workers re-check under job_mutex_, so the stack
                       // Job cannot be touched after this point
    }
    if (job.first_error) std::rethrow_exception(job.first_error);
  }

 private:
  WorkerPool() = default;

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      stop_ = true;
    }
    job_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void spawn_workers() {
    const std::size_t width = pool_width();
    if (width <= 1) return;
    workers_.reserve(width - 1);
    try {
      for (std::size_t w = 1; w < width; ++w) {
        workers_.emplace_back([this] { worker_loop(); });
      }
    } catch (const std::system_error&) {
      // Thread spawn failed (resource exhaustion): run with however many
      // workers did start; zero means every call drains inline.
    }
  }

  void worker_loop() {
    tls_pool_worker = true;
    for (;;) {
      Job* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] {
          return stop_ ||
                 (job_ != nullptr &&
                  job_->next.load(std::memory_order_relaxed) < job_->n);
        });
        if (stop_) return;
        job = job_;
        // Registered under the lock: the submitter cannot retire the job
        // until this participant drains and deregisters.
        job->active.fetch_add(1, std::memory_order_relaxed);
      }
      drain(*job);
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          done_cv_.notify_all();
        }
      }
    }
  }

  static void drain(Job& job) {
    for (;;) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) return;
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mutex);
        if (!job.first_error) job.first_error = std::current_exception();
        // Stop handing out work once something failed.
        job.next.store(job.n, std::memory_order_relaxed);
      }
    }
  }

  std::mutex submit_mutex_;  ///< serializes top-level jobs
  std::mutex job_mutex_;     ///< guards job_ / stop_ and both CVs
  std::condition_variable job_cv_;   ///< workers wait here for a job
  std::condition_variable done_cv_;  ///< submitter waits for fan-in
  Job* job_ = nullptr;
  bool stop_ = false;
  std::once_flag spawn_once_;
  std::vector<std::thread> workers_;
};

}  // namespace

std::size_t pool_width() noexcept {
  static const std::size_t width = detect_pool_width();
  return width;
}

std::size_t worker_count(std::size_t jobs) noexcept {
  return std::max<std::size_t>(1, std::min(pool_width(), jobs));
}

bool on_pool_worker() noexcept { return tls_pool_worker; }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || pool_width() == 1 || tls_pool_worker) {
    // Single item, single-threaded host, or a nested call from inside a
    // pool worker: run inline (nested fan-out would deadlock-prone-ly
    // contend for the one pool; every call site is schedule-invariant).
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkerPool::instance().run(n, fn);
}

}  // namespace ferex::util
