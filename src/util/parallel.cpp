#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

namespace ferex::util {

std::size_t pool_width() noexcept {
  const std::size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t worker_count(std::size_t jobs) noexcept {
  return std::max<std::size_t>(1, std::min(pool_width(), jobs));
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t workers = worker_count(n);
  if (workers == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Stop handing out work once something failed.
        next.store(n, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(drain);
  } catch (const std::system_error&) {
    // Thread spawn failed (resource exhaustion). The calling thread and
    // whatever workers did start still drain every item below; unwinding
    // here would instead terminate on the joinable threads.
  }
  drain();
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace ferex::util
