#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ferex::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double min_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double accuracy(std::span<const int> predicted, std::span<const int> actual) {
  if (predicted.empty() || predicted.size() != actual.size()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == actual[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double wilson_half_width(double p_hat, std::size_t n) noexcept {
  if (n == 0) return 0.0;
  constexpr double z = 1.96;
  const double nn = static_cast<double>(n);
  return z * std::sqrt(p_hat * (1.0 - p_hat) / nn + z * z / (4.0 * nn * nn)) /
         (1.0 + z * z / nn);
}

}  // namespace ferex::util
