// Crash-point fault injection for durability tests.
//
// Production code calls failpoint_hit("site.name") at each crash-relevant
// boundary (WAL record commit, snapshot rename, ...). In normal operation
// the call is a single relaxed atomic load. A test arms one site with a
// countdown and an action (typically `[] { _exit(0); }` in a forked
// child); the Nth hit of that site runs the action, simulating a process
// death at exactly that instant.
#pragma once

#include <cstdint>
#include <functional>

namespace ferex::util {

/// Arms `site`: the `countdown`-th call to failpoint_hit(site) (1-based)
/// invokes `action`. Countdown 0 counts hits without ever firing (the
/// dry-run mode crash sweeps use to enumerate a workload's boundaries).
/// Replaces any previously armed site.
void failpoint_arm(const char* site, std::uint64_t countdown,
                   std::function<void()> action);

/// Disarms everything (safe to call when nothing is armed).
void failpoint_disarm();

/// Number of times the currently armed site has been hit so far. Used by
/// tests to enumerate crash points: a counting dry run first, then one
/// armed run per boundary.
std::uint64_t failpoint_hits();

/// Injection site marker; near-zero cost unless a site is armed.
void failpoint_hit(const char* site);

}  // namespace ferex::util
