#include "util/rng.hpp"

#include <cmath>

namespace ferex::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& s) noexcept {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 of any
  // seed never yields four zeros in a row, but guard regardless.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept {
  return Rng{(*this)() ^ 0xa5a5a5a5deadbeefULL};
}

Rng::State Rng::state() const noexcept {
  State state{};
  for (int lane = 0; lane < 4; ++lane) state.s[lane] = state_[lane];
  state.cached_gaussian = cached_gaussian_;
  state.has_cached_gaussian = has_cached_gaussian_;
  return state;
}

void Rng::set_state(const State& state) noexcept {
  for (int lane = 0; lane < 4; ++lane) state_[lane] = state.s[lane];
  // Same forbidden-state guard as the constructor: never let a (corrupt)
  // snapshot park the generator in the all-zero fixed point.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
  cached_gaussian_ = state.cached_gaussian;
  has_cached_gaussian_ = state.has_cached_gaussian;
}

}  // namespace ferex::util
