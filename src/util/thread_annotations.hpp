// Clang thread-safety annotation macros — compile-time lock-protocol
// enforcement for the serving stack.
//
// The concurrency obligations this repo carries (queue mutex + CV
// protocols, the worker pool's submit/job split, AsyncAmIndex's write
// epochs and shared/exclusive validation lock, the AmIndex mutation
// guard) were previously enforced only at runtime: the TSan CI leg,
// typed errors, and tests. These macros make the protocols part of the
// type system — a clang build with `-Wthread-safety -Werror` (the CI
// `static-analysis` job, or `-DFEREX_THREAD_SAFETY=ON` locally) rejects
// any access to a `GUARDED_BY` field without its capability, any call
// to a `REQUIRES` function without the lock, and any unbalanced
// ACQUIRE/RELEASE path.
//
// Off clang (or when the attribute is unsupported) every macro expands
// to nothing, so GCC/MSVC builds are byte-identical with or without
// annotations. The capability vocabulary follows the standard set from
// the Clang thread-safety documentation; see src/util/mutex.hpp for the
// annotated std::mutex / std::shared_mutex wrappers the analysis can
// see through (libstdc++'s own lock types carry no annotations).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FEREX_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FEREX_THREAD_ANNOTATION
#define FEREX_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (lockable). The string names the
/// capability kind in diagnostics ("mutex", "shared_mutex", "role").
#define CAPABILITY(x) FEREX_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define SCOPED_CAPABILITY FEREX_THREAD_ANNOTATION(scoped_lockable)

/// Data members: reads/writes require holding the given capability.
#define GUARDED_BY(x) FEREX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointed-to data requires the capability.
#define PT_GUARDED_BY(x) FEREX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-order declarations (deadlock detection).
#define ACQUIRED_BEFORE(...) \
  FEREX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  FEREX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Functions: caller must hold the capability (exclusively / shared).
#define REQUIRES(...) \
  FEREX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  FEREX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire the capability (exclusively / shared) on entry.
#define ACQUIRE(...) \
  FEREX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FEREX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Functions: release the capability. RELEASE_GENERIC releases either
/// an exclusive or a shared hold (scoped reader locks' destructors).
#define RELEASE(...) \
  FEREX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FEREX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  FEREX_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Functions: acquire only when returning the given value.
#define TRY_ACQUIRE(...) \
  FEREX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FEREX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Functions: caller must NOT hold the capability (non-reentrancy).
#define EXCLUDES(...) FEREX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Functions: a runtime check after which the analysis may assume the
/// capability is held (e.g. a guard that throws instead of blocking).
#define ASSERT_CAPABILITY(x) FEREX_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  FEREX_THREAD_ANNOTATION(assert_shared_capability(x))

/// Functions returning a reference to a capability.
#define RETURN_CAPABILITY(x) FEREX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  FEREX_THREAD_ANNOTATION(no_thread_safety_analysis)
