// Deterministic random number generation for reproducible simulations.
//
// All stochastic components of the FeReX simulator (device variation,
// Monte-Carlo sampling, synthetic dataset generation, HDC projection
// matrices) draw from this generator so that every experiment is exactly
// reproducible from a seed.
#pragma once

#include <cstdint>
#include <limits>

namespace ferex::util {

/// xoshiro256++ 1.0 — a small, fast, high-quality 64-bit PRNG.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but the convenience members below avoid
/// the libstdc++ distribution objects for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from a single seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached pair for efficiency).
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Bernoulli with probability p of true.
  bool bernoulli(double p) noexcept;

  /// Splits off an independent child generator (for parallel streams).
  Rng split() noexcept;

  /// Complete generator state, capturable mid-stream. Restoring a State
  /// resumes the exact output sequence — including the Box-Muller cache,
  /// so an interrupted gaussian() pair continues where it left off.
  struct State {
    std::uint64_t s[4];
    double cached_gaussian;
    bool has_cached_gaussian;
  };

  State state() const noexcept;
  void set_state(const State& state) noexcept;

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace ferex::util
