#include "util/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <system_error>

#include "util/failpoint.hpp"

namespace ferex::util {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw std::system_error(errno, std::generic_category(),
                          std::string(what) + ": " + path);
}

std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail(dir, "open dir");
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail(dir, "fsync dir");
  }
  ::close(fd);
}

/// Closes on scope exit unless release()d — keeps the error paths (and
/// throwing failpoint actions in tests) from leaking descriptors.
struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
  void release() { fd = -1; }
};

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ::ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(path, "write");
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return false;
    fail(path, "open");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buffer, sizeof buffer);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      fail(path, "read");
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  ::close(fd);
  out = std::move(bytes);
  return true;
}

void atomic_write_file(const std::string& path, const std::uint8_t* data,
                       std::size_t size) {
  const std::string temp = path + ".tmp";
  const int fd =
      ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) fail(temp, "open");
  FdCloser closer{fd};
  write_all(fd, data, size, temp);
  failpoint_hit("durable.atomic.before_temp_sync");
  if (::fsync(fd) != 0) fail(temp, "fsync");
  ::close(fd);
  closer.release();
  failpoint_hit("durable.atomic.before_rename");
  if (::rename(temp.c_str(), path.c_str()) != 0) fail(path, "rename");
  failpoint_hit("durable.atomic.before_dir_sync");
  fsync_dir(parent_dir(path));
}

void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& data) {
  atomic_write_file(path, data.data(), data.size());
}

void ensure_directory(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0) {
    if (errno == EEXIST) return;
    fail(path, "mkdir");
  }
  fsync_dir(parent_dir(path));
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0) {
    fail(path, "truncate");
  }
  fsync_dir(parent_dir(path));
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) fail(path, "unlink");
}

AppendFile::AppendFile(const std::string& path, SyncPolicy policy)
    : path_(path), policy_(policy) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) fail(path, "open");
  struct ::stat info{};
  if (::fstat(fd_, &info) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    fail(path, "fstat");
  }
  size_ = static_cast<std::uint64_t>(info.st_size);
}

AppendFile::~AppendFile() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; an explicit close() reports failures.
  }
}

void AppendFile::append(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) fail(path_, "append to closed file");
  failpoint_hit("durable.append.before_write");
  write_all(fd_, data, size, path_);
  size_ += size;
  failpoint_hit("durable.append.before_sync");
  if (policy_ == SyncPolicy::kEveryAppend) {
    if (::fsync(fd_) != 0) fail(path_, "fsync");
  }
  failpoint_hit("durable.append.after_commit");
}

void AppendFile::sync() {
  if (fd_ < 0) return;
  if (::fsync(fd_) != 0) fail(path_, "fsync");
}

void AppendFile::close() {
  if (fd_ < 0) return;
  if (policy_ != SyncPolicy::kNever) {
    if (::fsync(fd_) != 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      fail(path_, "fsync");
    }
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    fail(path_, "close");
  }
  fd_ = -1;
}

}  // namespace ferex::util
