// Crash-safe file primitives shared by the snapshot and WAL writers.
//
// All raw file descriptors live here: the serving and encode layers are
// forbidden (by the `raw-file-io` lint rule) from opening files directly,
// so every byte that must survive a crash funnels through this module and
// inherits its fsync discipline.
//
//  - atomic_write_file(): write-temp + fsync + rename + fsync(parent dir).
//    A crash at any instant leaves either the complete old file or the
//    complete new file visible — never a torn hybrid.
//  - AppendFile: append-only handle with an explicit fsync policy, used
//    for the write-ahead log.
//  - read_file()/truncate_file()/remove_file(): the recovery-side
//    counterparts.
//
// Failures surface as std::system_error carrying errno and the path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ferex::util {

/// When an AppendFile pushes bytes to stable storage.
enum class SyncPolicy {
  kNever,        ///< no fsync at all (benchmarks; crash loses the tail)
  kOnClose,      ///< one fsync when the handle closes
  kEveryAppend,  ///< fsync after every append (commit == durable)
};

/// Reads the whole file into `out`. Returns false (out untouched) if the
/// file does not exist; throws std::system_error on any other failure.
bool read_file(const std::string& path, std::vector<std::uint8_t>& out);

/// Atomically replaces `path` with `data`: writes `path + ".tmp"`, fsyncs
/// it, renames over `path`, then fsyncs the parent directory so the
/// rename itself is durable. Rename-over-existing is the normal case.
void atomic_write_file(const std::string& path, const std::uint8_t* data,
                       std::size_t size);
void atomic_write_file(const std::string& path,
                       const std::vector<std::uint8_t>& data);

/// Creates `path` as a directory (parent must exist) and fsyncs the
/// parent so the new entry survives a crash. No-op when the directory
/// already exists. Used by the sharded durability layer to lay out its
/// per-shard subdirectories.
void ensure_directory(const std::string& path);

/// Truncates `path` to `size` bytes (used to drop a torn WAL tail).
void truncate_file(const std::string& path, std::uint64_t size);

/// Removes `path` if it exists; throws only on a real failure.
void remove_file(const std::string& path);

/// Append-only file handle for the WAL. Creates the file if missing and
/// always appends at the end. Not copyable; closing (or destruction)
/// applies the kOnClose sync.
class AppendFile {
 public:
  AppendFile(const std::string& path, SyncPolicy policy);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Appends `size` bytes; under kEveryAppend the call returns only after
  /// the bytes (and on first growth, the parent directory entry) are
  /// fsynced.
  void append(const std::uint8_t* data, std::size_t size);

  /// Explicit fsync, independent of policy.
  void sync();

  /// Closes the handle (idempotent); fsyncs first under kOnClose.
  void close();

  /// Current size in bytes (file offset after the last append).
  std::uint64_t size() const noexcept { return size_; }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  SyncPolicy policy_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace ferex::util
