#include "util/failpoint.hpp"

#include <atomic>
#include <cstring>
#include <string>
#include <utility>

#include "util/mutex.hpp"

namespace ferex::util {

namespace {

// Fast-path gate: production code pays one relaxed load per site when
// nothing is armed. The slow path (an armed run inside a test) takes the
// mutex so dispatcher threads hitting sites race cleanly with each other.
std::atomic<bool> g_armed{false};

Mutex g_mutex;
std::string g_site GUARDED_BY(g_mutex);
std::uint64_t g_countdown GUARDED_BY(g_mutex) = 0;
std::uint64_t g_hits GUARDED_BY(g_mutex) = 0;
std::function<void()> g_action GUARDED_BY(g_mutex);

}  // namespace

void failpoint_arm(const char* site, std::uint64_t countdown,
                   std::function<void()> action) {
  MutexLock lock(g_mutex);
  g_site = site;
  g_countdown = countdown;
  g_hits = 0;
  g_action = std::move(action);
  g_armed.store(true, std::memory_order_release);
}

void failpoint_disarm() {
  MutexLock lock(g_mutex);
  g_armed.store(false, std::memory_order_release);
  g_site.clear();
  g_countdown = 0;
  g_hits = 0;
  g_action = nullptr;
}

std::uint64_t failpoint_hits() {
  MutexLock lock(g_mutex);
  return g_hits;
}

void failpoint_hit(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  std::function<void()> action;
  {
    MutexLock lock(g_mutex);
    if (!g_armed.load(std::memory_order_relaxed)) return;
    if (g_site != site) return;
    ++g_hits;
    if (g_countdown == 0 || g_hits != g_countdown) return;
    action = g_action;
  }
  // Run outside the lock: the action may _exit, throw, or re-arm.
  if (action) action();
}

}  // namespace ferex::util
