// Small statistics helpers used by the Monte-Carlo and benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ferex::util {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 samples.
double stddev(std::span<const double> xs) noexcept;

/// Minimum / maximum; 0 for an empty range.
double min_of(std::span<const double> xs) noexcept;
double max_of(std::span<const double> xs) noexcept;

/// Linear-interpolation percentile, p in [0, 100]. 0 for an empty range.
double percentile(std::span<const double> xs, double p);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;
  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fraction of equal elements between two label vectors (classification
/// accuracy). Vectors must be the same length; returns 0 for empty input.
double accuracy(std::span<const int> predicted, std::span<const int> actual);

/// Wilson score interval half-width for a binomial proportion at ~95%.
double wilson_half_width(double p_hat, std::size_t n) noexcept;

}  // namespace ferex::util
