// Bounded MPMC queue — the admission-control primitive for async serving.
//
// A serving front door must bound its backlog: past a configurable depth
// it is better to reject a request immediately (the caller can shed or
// retry) than to let latency grow without bound. This queue therefore
// never blocks producers — try_push fails fast when the queue is full or
// closed — while consumers can block (pop), poll (try_pop), or wait with
// a deadline (pop_until, the coalescing linger of AsyncAmIndex).
//
// close() flips the queue into drain mode: pushes fail, but consumers
// keep receiving the items that were already queued until the queue is
// empty, and only then do pop/pop_until return false. That is exactly
// the shutdown contract of a request queue whose items carry promises —
// every accepted request is either served or explicitly failed, never
// silently dropped.
//
// Plain mutex + condition variable: the pool's fan-out work never flows
// through this queue (items are whole requests, microseconds of work
// each), so lock-free cleverness would buy nothing and cost TSan-proof
// simplicity. The mutex/CV protocol is annotated for Clang's
// thread-safety analysis: items_ and closed_ are GUARDED_BY(mutex_),
// and pop_locked is REQUIRES(mutex_) — an unlocked access is a compile
// error on the `static-analysis` CI leg.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace ferex::util {

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity would make every push fail; clamp to 1.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed (returns false either
  /// way — never blocks). A failed push leaves `item` moved-from.
  bool try_push(T item) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Enqueues like try_push, but places the item just ahead of the
  /// first element matching `low` beyond the first `skip` matches
  /// (counting from the front); with no such element it goes to the
  /// back. The class-priority placement primitive: a search overtakes
  /// queued low-class items while still yielding to a bounded budget
  /// of them, and same-class FIFO order is never disturbed.
  template <typename Pred>
  bool try_push_before(T item, Pred&& low, std::size_t skip) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      auto it = items_.begin();
      std::size_t yielded = 0;
      for (; it != items_.end(); ++it) {
        if (low(*it) && ++yielded > skip) break;
      }
      items_.insert(it, std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained;
  /// false only in the latter case (drain mode still hands out items).
  bool pop(T& out) {
    MutexLock lock(mutex_);
    ready_.wait(mutex_,
                [&]() REQUIRES(mutex_) { return closed_ || !items_.empty(); });
    return pop_locked(out);
  }

  /// Non-blocking pop; false when nothing is immediately available.
  bool try_pop(T& out) {
    MutexLock lock(mutex_);
    return pop_locked(out);
  }

  /// Blocks until an item arrives, the deadline passes, or the queue is
  /// closed and drained; false when no item was handed out.
  bool pop_until(T& out, std::chrono::steady_clock::time_point deadline) {
    MutexLock lock(mutex_);
    ready_.wait_until(mutex_, deadline, [&]() REQUIRES(mutex_) {
      return closed_ || !items_.empty();
    });
    return pop_locked(out);
  }

  /// Fails all future pushes and wakes every waiting consumer; queued
  /// items stay poppable (drain mode). Idempotent.
  void close() {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    MutexLock lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool pop_locked(T& out) REQUIRES(mutex_) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  const std::size_t capacity_;
  mutable Mutex mutex_;
  /// _any: waits directly on the annotated Mutex (BasicLockable).
  std::condition_variable_any ready_;
  std::deque<T> items_ GUARDED_BY(mutex_);
  bool closed_ GUARDED_BY(mutex_) = false;
};

}  // namespace ferex::util
