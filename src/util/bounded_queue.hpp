// Bounded MPMC queue — the admission-control primitive for async serving.
//
// A serving front door must bound its backlog: past a configurable depth
// it is better to reject a request immediately (the caller can shed or
// retry) than to let latency grow without bound. This queue therefore
// never blocks producers — try_push fails fast when the queue is full or
// closed — while consumers can block (pop), poll (try_pop), or wait with
// a deadline (pop_until, the coalescing linger of AsyncAmIndex).
//
// close() flips the queue into drain mode: pushes fail, but consumers
// keep receiving the items that were already queued until the queue is
// empty, and only then do pop/pop_until return false. That is exactly
// the shutdown contract of a request queue whose items carry promises —
// every accepted request is either served or explicitly failed, never
// silently dropped.
//
// Plain mutex + condition variable: the pool's fan-out work never flows
// through this queue (items are whole requests, microseconds of work
// each), so lock-free cleverness would buy nothing and cost TSan-proof
// simplicity.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>

namespace ferex::util {

template <typename T>
class BoundedQueue {
 public:
  /// A zero capacity would make every push fail; clamp to 1.
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues unless the queue is full or closed (returns false either
  /// way — never blocks). A failed push leaves `item` moved-from.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed *and* drained;
  /// false only in the latter case (drain mode still hands out items).
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return pop_locked(out);
  }

  /// Non-blocking pop; false when nothing is immediately available.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lock(mutex_);
    return pop_locked(out);
  }

  /// Blocks until an item arrives, the deadline passes, or the queue is
  /// closed and drained; false when no item was handed out.
  bool pop_until(T& out, std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait_until(lock, deadline,
                      [&] { return closed_ || !items_.empty(); });
    return pop_locked(out);
  }

  /// Fails all future pushes and wakes every waiting consumer; queued
  /// items stay poppable (drain mode). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  bool pop_locked(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ferex::util
