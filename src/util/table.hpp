// ASCII table formatter used by the benchmark harnesses to print the
// paper's tables and figure series in a uniform, diffable layout.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ferex::util {

/// Column-aligned text table. Rows may be added as pre-formatted strings or
/// via the variadic helper which stringifies arithmetic values.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds one row; pads/truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string fmt(double v, int precision = 3);

  /// Convenience: scientific notation.
  static std::string sci(double v, int precision = 2);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with a separator line under the header.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

/// Prints a section banner ("== title ==") used between experiments.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ferex::util
