// FeReX — the reconfigurable in-memory nearest-neighbor search engine
// (the paper's primary contribution, Sec. III).
//
// Usage:
//   core::FerexEngine engine(options);
//   engine.configure(csp::DistanceMetric::kHamming, /*bits=*/2);
//   engine.store(database);                  // programs the crossbar
//   auto r = engine.search(query);           // LTA nearest neighbor
//   engine.configure(csp::DistanceMetric::kManhattan, 2);  // re-encode,
//   // same stored data, new distance function — no new hardware.
//
// configure() runs the CSP encoder (Algorithm 1 + Fig. 5 post-processing)
// for the requested metric, derives the voltage ladder, and re-programs
// the stored vectors under the new encoding. search() drives the
// simulated crossbar and LTA; searches can run at circuit fidelity
// (device currents, variation, comparator noise) or at nominal fidelity
// (integer current arithmetic the circuit is verified against).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "circuit/crossbar.hpp"
#include "circuit/energy_model.hpp"
#include "circuit/lta.hpp"
#include "circuit/write.hpp"
#include "csp/distance_matrix.hpp"
#include "encode/composite.hpp"
#include "encode/encoder.hpp"
#include "util/rng.hpp"

namespace ferex::core {

/// How faithfully search() models the hardware.
enum class SearchFidelity {
  kCircuit,  ///< device-level currents + variation + LTA offset noise
  kNominal,  ///< exact integer current arithmetic (verified equivalent)
};

struct FerexOptions {
  encode::EncoderOptions encoder{};
  circuit::CrossbarConfig circuit{};
  circuit::LtaParams lta{};
  circuit::ParasiticParams parasitics{};
  /// Base voltage of the Vs/Vt ladder and its pitch (margin = pitch / 2).
  double ladder_base_v = 0.2;
  double ladder_step_v = 0.6;
  SearchFidelity fidelity = SearchFidelity::kCircuit;
  std::uint64_t seed = 0x5eed;
  /// Intra-query parallelism heuristic: when a single circuit-fidelity
  /// query's work (array devices = rows * dims * fefets per cell) reaches
  /// this threshold and more than one hardware thread is available, the
  /// query's rows fan across the worker pool. Batched entry points apply
  /// it only when the batch alone cannot saturate the pool (fewer
  /// queries than hardware threads). 0 disables intra-query parallelism.
  /// The nominal-fidelity kernel is a table gather whose per-row cost is
  /// far below thread-spawn overhead, so it never fans.
  std::size_t intra_query_min_devices = 32768;
};

/// Result of one nearest-neighbor query.
struct SearchResult {
  std::size_t nearest = 0;            ///< winning row index
  double winner_current_a = 0.0;      ///< sensed current of the winner
  double margin_a = 0.0;              ///< sensed gap to the runner-up
  int nominal_distance = 0;           ///< encoding-level distance of winner
};

/// Receipt for one streaming insert: the physical slot the vector landed
/// in and the write cost of programming it.
struct EngineInsert {
  std::size_t row = 0;
  circuit::WriteCost cost{};
};

class FerexEngine {
 public:
  explicit FerexEngine(FerexOptions options = {});

  /// Configures (or re-configures) the distance function. Runs the CSP
  /// encoder; re-programs any stored data under the new encoding.
  /// Throws std::runtime_error if no feasible encoding exists within the
  /// encoder limits.
  void configure(csp::DistanceMetric metric, int bits);

  /// Configures from an arbitrary custom distance matrix.
  void configure(const csp::DistanceMatrix& dm);

  /// Configures through a composite (digit-decomposed) encoding — the
  /// scalable path for separable metrics at bit widths the exact CSP
  /// cannot reach (bit-sliced Hamming up to 8 bits, thermometer Manhattan
  /// up to 6 bits). Each logical element occupies codec.subcells()
  /// physical cells; searches and programming are transparent.
  /// Throws std::runtime_error for non-separable metrics (Euclidean).
  void configure_composite(csp::DistanceMetric metric, int bits);

  /// Active codec when configured via configure_composite (else nullptr).
  const encode::ValueCodec* codec() const noexcept {
    return codec_ ? &*codec_ : nullptr;
  }

  /// Stores a database of vectors (all of equal length; element values in
  /// [0, 2^bits)). Replaces any previous contents and programs the array.
  void store(std::vector<std::vector<int>> database);

  /// Streaming insert. Reuses the lowest freed (removed) slot first —
  /// the slot is already erased, so the write pays programming only and
  /// the array keeps its physical footprint — and only otherwise appends
  /// a row (program_row on a grown array — no re-store of existing
  /// rows). Requires configure(); the first insert on an empty engine
  /// establishes the dimensionality. Append searches are bit-identical
  /// to a fresh store() of the concatenated database (the new row's
  /// device variation continues the engine's variation stream exactly
  /// where a larger store() would have drawn it); a reused slot keeps
  /// its own device variation, so the result equals a fresh store() of
  /// the same physical layout. A later configure() re-encodes inserted
  /// rows like any stored row. Throws without mutating on a wrong-length
  /// or out-of-alphabet vector.
  EngineInsert insert(std::span<const int> vector);

  /// Deletes one row: erases the slot (a single row-wide erase pulse,
  /// whose WriteCost is returned) and masks it in the post-decoder, so
  /// it can never win an LTA round — live rows' comparator-noise draws
  /// are exactly those of an array holding only the live rows. The slot
  /// stays allocated and is the first insert() reuses. Throws
  /// std::out_of_range on a bad index, std::logic_error when the row is
  /// already removed.
  circuit::WriteCost remove(std::size_t row);

  /// Overwrites one slot in place — erase (charged only when the slot
  /// held live data; a removed slot is already erased) plus
  /// program-and-verify, mirroring program_cost's per-row accounting —
  /// and marks it live. Validates the vector before mutating.
  circuit::WriteCost update(std::size_t row, std::span<const int> vector);

  /// Nearest-neighbor search. Requires configure() and store(). A thin
  /// shim over the const ordinal-addressed core (search_hits_at) that
  /// consumes one ordinal; mutates only query_serial_.
  SearchResult search(std::span<const int> query);

  /// Batched nearest-neighbor search. Equivalent to calling search() once
  /// per query in order — results are bit-identical, including the
  /// circuit-fidelity comparator noise, which is drawn from a per-query
  /// stream indexed by the engine's query ordinal rather than a shared
  /// sequential stream — but queries are expanded once and fanned across
  /// a worker pool sized by std::thread::hardware_concurrency().
  /// An empty batch returns an empty vector. Invalid queries — wrong
  /// length or out-of-alphabet values — are rejected up front, before
  /// any ordinal is consumed, in both the sequential and batched APIs.
  std::vector<SearchResult> search_batch(
      std::span<const std::vector<int>> queries);

  /// Nearest-neighbor search with an explicit query ordinal: the ordinal
  /// selects the per-query comparator-noise stream, so callers that
  /// schedule their own concurrency (e.g. BankedAm) stay deterministic.
  /// Does not consume the engine's ordinal counter. `parallel_rows`
  /// overrides the intra-query heuristic — callers already running this
  /// engine inside their own worker pool pass false to avoid nesting
  /// pools; nullopt applies intra_query_min_devices. The schedule never
  /// affects results.
  SearchResult search_at(std::span<const int> query, std::uint64_t ordinal,
                         std::optional<bool> parallel_rows =
                             std::nullopt) const;

  /// The k-NN serving core: the top-k rows nearest first, each with its
  /// sensed current, margin to the best remaining row, and nominal
  /// distance — what SearchResult carries for k = 1, for every rank.
  /// Const and ordinal-addressed (see search_at). k = 1 is bit-identical
  /// to search_at; the winner sequence for any k is bit-identical to
  /// search_k_at (both are shims over this core).
  std::vector<SearchResult> search_hits_at(
      std::span<const int> query, std::size_t k, std::uint64_t ordinal,
      std::optional<bool> parallel_rows = std::nullopt) const;

  /// Const ordinal-addressed core of search_batch: queries take ordinals
  /// base_ordinal, base_ordinal + 1, ... Does not consume the engine's
  /// ordinal counter; results are bit-identical to search_at per query.
  std::vector<SearchResult> search_batch_at(
      std::span<const std::vector<int>> queries,
      std::uint64_t base_ordinal) const;

  /// True when the intra-query heuristic (intra_query_min_devices vs the
  /// array's device count and the pool width) says a single query's rows
  /// would fan across the worker pool. Exposed so multi-engine layers can
  /// schedule around it.
  bool intra_query_parallel() const noexcept;

  /// k-nearest rows, nearest first (iterative LTA with masking). A shim
  /// over search_hits_at; requires 1 <= k <= stored_count() (validated,
  /// like the query, before an ordinal is consumed).
  std::vector<std::size_t> search_k(std::span<const int> query, std::size_t k);

  /// Ordinal-addressed variant of search_k (see search_at).
  std::vector<std::size_t> search_k_at(std::span<const int> query,
                                       std::size_t k,
                                       std::uint64_t ordinal) const;

  /// Ordinal the next search()/search_k() call will use. Each call
  /// consumes one ordinal; search_batch consumes one per query.
  std::uint64_t query_serial() const noexcept { return query_serial_; }

  /// Raw sensed row currents for a query (codec-expanded; at nominal
  /// fidelity these are exact distances). Building block for multi-macro
  /// architectures that place their own comparator across banks.
  std::vector<double> row_currents(std::span<const int> query) const;

  /// The unit in which row_currents() is expressed: the cell unit current
  /// at circuit fidelity, 1.0 (distance units) at nominal fidelity.
  double sense_unit() const;

  /// Exact software distance between the query and a stored row under the
  /// configured metric (the verification reference).
  int software_distance(std::span<const int> query, std::size_t row) const;

  /// Encoding-level distance between the query and a stored row — the
  /// value SearchResult::nominal_distance reports for that row (codec
  /// expansion applied; equals software_distance for standard metrics).
  int nominal_distance(std::span<const int> query, std::size_t row) const;

  /// Validates a query exactly as every search entry point does: throws
  /// std::invalid_argument on wrong length, std::out_of_range on
  /// out-of-alphabet values, std::logic_error before configure()+store().
  /// Exposed so serving layers can reject requests before consuming any
  /// query ordinal.
  void validate_query(std::span<const int> query) const;

  /// True when a batch of `batch_size` queries is better served by
  /// running queries serially and fanning each query's rows (the batch
  /// alone cannot saturate the pool and the row fan is at least as
  /// wide) — the scheduling rule search_batch applies. Never affects
  /// results.
  bool inner_fan_for_batch(std::size_t batch_size) const noexcept;

  /// Energy/delay of one search op on the current geometry (Fig. 6 model).
  circuit::SearchCost search_cost() const;

  /// Cost of programming the whole stored database (erase + program-and-
  /// verify pulse trains per device, rows written sequentially). The
  /// write path is the price of reconfiguration: re-encoding the same
  /// data under a new metric pays this once.
  circuit::WriteCost program_cost() const;

  bool configured() const noexcept { return encoding_.has_value(); }

  /// Physical slots (live + removed). k and search validation are
  /// against live_count(); removed slots are reused by insert().
  std::size_t stored_count() const noexcept { return database_.size(); }

  /// Rows that compete in searches (stored_count() minus removed slots).
  std::size_t live_count() const noexcept { return live_rows_; }

  /// True when the slot holds live data (throws std::out_of_range on a
  /// bad index).
  bool row_live(std::size_t row) const {
    if (row >= live_.size()) throw std::out_of_range("row_live: row");
    return live_[row] != 0;
  }

  /// Per-slot post-decoder mask (1 = live) — what multi-macro layers
  /// concatenate for their global masked LTA stages.
  std::span<const std::uint8_t> live_mask() const noexcept { return live_; }

  std::size_t dims() const noexcept {
    return database_.empty() ? 0 : database_.front().size();
  }

  const encode::CellEncoding& encoding() const;
  const encode::EncoderReport& encoder_report() const { return report_; }
  const csp::DistanceMatrix& distance_matrix() const;
  csp::DistanceMetric metric() const noexcept { return metric_; }
  int bits() const noexcept { return bits_; }

  /// Access to the simulated array (nullptr before store()).
  const circuit::CrossbarArray* array() const noexcept { return array_.get(); }

  FerexOptions& options() noexcept { return options_; }
  const FerexOptions& options() const noexcept { return options_; }

  /// Complete mutable engine state for a durable snapshot. The byte
  /// format lives in serve/snapshot; the engine only exports and
  /// installs its state. The fabrication arrays (per-device Vth offsets
  /// and resistances) plus the RNG position make restoration exact:
  /// restored searches and every subsequent insert's variation draw are
  /// bit-identical to the uninterrupted engine.
  struct EngineState {
    std::vector<std::vector<int>> database;
    std::vector<std::uint8_t> live;
    std::uint64_t query_serial = 0;
    util::Rng::State rng{};
    std::vector<double> vth_offsets;  ///< empty when nothing is stored
    std::vector<double> resistances;
  };

  /// Exports the current state (requires nothing; an unstored engine
  /// exports empty arrays).
  EngineState snapshot_state() const;

  /// Installs a previously exported state. Requires configure() with
  /// the same metric/bits/options the snapshot was taken under (the
  /// snapshot layer enforces this with typed errors; a raw size mismatch
  /// here throws std::invalid_argument). Rebuilds the array from the
  /// recorded fabrication arrays — no variation is redrawn.
  void restore_state(EngineState state);

  /// Tombstone compaction: drops removed slots and rebuilds as a fresh
  /// store() of the survivors on a fresh engine — the variation RNG is
  /// re-seeded from options().seed, so the result (currents, hits, and
  /// every subsequent insert) is bit-identical to configure()+store() of
  /// the surviving rows. Compacting an all-live index is a no-op; an
  /// all-removed index returns to the unstored state. Returns the number
  /// of slots reclaimed.
  std::size_t compact();

 private:
  void rebuild_array();
  /// Ladder + physical width shared by rebuild_array and restore_state.
  device::VoltageLadder make_ladder() const;
  std::size_t physical_dims() const;
  /// Independent comparator-noise generator for one query ordinal.
  util::Rng query_rng(std::uint64_t ordinal) const noexcept;
  /// Throws std::invalid_argument unless query has the stored logical
  /// dimensionality (pre-codec length), std::out_of_range unless every
  /// element is inside the configured alphabet.
  void check_query(std::span<const int> query) const;
  /// Top-k over an already codec-expanded query — the one kernel every
  /// search entry point funnels through. `parallel_rows` fans the
  /// crossbar rows across the worker pool (bit-identical results).
  std::vector<SearchResult> search_hits_expanded(std::span<const int> expanded,
                                                 std::size_t k, util::Rng* rng,
                                                 bool parallel_rows) const;
  /// Search over an already codec-expanded query (k = 1 shim).
  SearchResult search_expanded(std::span<const int> expanded, util::Rng* rng,
                               bool parallel_rows) const;
  /// Post-validation cores: expand if needed, derive the ordinal's rng,
  /// run. Callers must have validated via check_query.
  std::vector<SearchResult> search_hits_validated(std::span<const int> query,
                                                  std::size_t k,
                                                  std::uint64_t ordinal,
                                                  bool parallel_rows) const;
  SearchResult search_validated(std::span<const int> query,
                                std::uint64_t ordinal,
                                bool parallel_rows) const;
  std::vector<std::size_t> search_k_validated(std::span<const int> query,
                                              std::size_t k,
                                              std::uint64_t ordinal) const;
  std::vector<SearchResult> search_batch_validated(
      std::span<const std::vector<int>> queries,
      std::uint64_t base_ordinal) const;
  /// Program-and-verify cost of one already-programmed row.
  circuit::WriteCost row_write_cost(std::size_t row) const;
  /// Cost of the row-wide erase pulse (remove, and the erase half of an
  /// overwrite of live data).
  circuit::WriteCost row_erase_cost() const;
  /// The write driver every per-row cost model shares.
  circuit::WriteDriver write_driver() const;

  FerexOptions options_;
  util::Rng rng_;
  std::uint64_t query_serial_ = 0;
  csp::DistanceMetric metric_ = csp::DistanceMetric::kHamming;
  int bits_ = 0;
  std::optional<csp::DistanceMatrix> dm_;
  std::optional<encode::CellEncoding> encoding_;
  std::optional<encode::ValueCodec> codec_;
  encode::EncoderReport report_{};
  std::vector<std::vector<int>> database_;
  std::vector<std::uint8_t> live_;  ///< per-slot liveness (1 = live);
                                    ///< survives configure() rebuilds
  std::size_t live_rows_ = 0;
  std::unique_ptr<circuit::CrossbarArray> array_;
  circuit::LtaCircuit lta_;
};

}  // namespace ferex::core
