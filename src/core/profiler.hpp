// Search-quality profiler: analysis instrumentation for FeReX workloads.
//
// Circuit designers judge an AM deployment by its *margins*: how far the
// winning row's current sits from the runner-up, and how much the sensed
// currents deviate from the nominal integer distances. This profiler
// replays a query workload against an engine at circuit fidelity and
// aggregates those statistics — the quantities that predict Monte-Carlo
// accuracy (Fig. 7) without running the full MC.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/ferex.hpp"
#include "util/stats.hpp"

namespace ferex::core {

struct SearchProfile {
  std::size_t queries = 0;

  /// Sensed winner-to-runner-up margin, in unit currents.
  util::RunningStats margin_units;

  /// |sensed - nominal| of the winning row, in unit currents (captures
  /// leakage, clamp error and variation in one number).
  util::RunningStats winner_error_units;

  /// Fraction of queries where the circuit winner achieves the true
  /// (software) minimum distance.
  double argmin_agreement = 0.0;

  /// Histogram of winning nominal distances (index = distance, clipped).
  std::vector<std::size_t> winner_distance_histogram;

  /// Fixed-point ScL solve behaviour during the replay (one solve per row
  /// per circuit-fidelity query; all zero at nominal fidelity, where no
  /// solves run). Surfaces what the crossbar's damped iteration used to
  /// cap silently: how many iterations the solves took and how many hit
  /// the cap without meeting the tolerance.
  std::uint64_t scl_solves = 0;
  double scl_mean_iterations = 0.0;
  std::uint64_t scl_non_converged = 0;
};

/// Replays `queries` against the engine and aggregates search-quality
/// statistics. The engine must be configured and loaded; queries are
/// evaluated at the engine's configured fidelity.
SearchProfile profile_searches(FerexEngine& engine,
                               std::span<const std::vector<int>> queries,
                               std::size_t histogram_bins = 32);

}  // namespace ferex::core
