// Search-quality profiler: analysis instrumentation for FeReX workloads.
//
// Circuit designers judge an AM deployment by its *margins*: how far the
// winning row's current sits from the runner-up, and how much the sensed
// currents deviate from the nominal integer distances. This profiler
// replays a query workload against an engine at circuit fidelity and
// aggregates those statistics — the quantities that predict Monte-Carlo
// accuracy (Fig. 7) without running the full MC.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/ferex.hpp"
#include "util/stats.hpp"

namespace ferex::core {

/// Serve-path latency percentiles via a lock-free per-thread reservoir.
///
/// The serving layer needs p50/p95/p99 of queue-wait and end-to-end
/// latency without perturbing the path it measures: a mutex-guarded
/// sample vector would serialize exactly the threads whose concurrency
/// is being benchmarked. Instead each recording thread owns one slot —
/// claimed once with a CAS, cached thread-locally — and appends into a
/// fixed-size sample array with relaxed atomic stores (reservoir
/// sampling once the array is full, so the kept set stays a uniform
/// sample of everything seen). record() takes no locks and never blocks
/// another recorder.
///
/// summarize() merges the per-thread reservoirs into percentiles. It can
/// run concurrently with recorders — the atomics make that well-defined
/// under TSan — but a snapshot taken mid-traffic is a sample of a moving
/// stream; quiesce first when exact counts matter. More recording
/// threads than kSlots is not an error: overflow records are counted
/// (and reported via Summary::dropped) rather than taken.
class LatencyReservoir {
 public:
  /// Max concurrent recording threads tracked slot-per-thread.
  static constexpr std::size_t kSlots = 64;

  /// `capacity_per_thread` bounds memory: each recording thread keeps at
  /// most this many samples (uniformly subsampled past it).
  explicit LatencyReservoir(std::size_t capacity_per_thread = 512);

  LatencyReservoir(const LatencyReservoir&) = delete;
  LatencyReservoir& operator=(const LatencyReservoir&) = delete;

  /// Records one sample (microseconds by convention). Lock-free; safe
  /// from any number of threads concurrently.
  void record(double sample_us) noexcept;

  struct Summary {
    std::uint64_t count = 0;    ///< samples offered to record()
    std::uint64_t kept = 0;     ///< samples retained in the reservoirs
    std::uint64_t dropped = 0;  ///< records lost to slot exhaustion
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;  ///< exact (tracked outside the reservoir)
  };

  /// Merges every thread's reservoir into percentiles (linear
  /// interpolation over the kept samples, the bench_json convention).
  Summary summarize() const;

 private:
  /// Thread-safety: deliberately lock-free, so these fields are exempt
  /// from GUARDED_BY — there is no capability to name. `owner` is the
  /// synchronization point: a slot is claimed with a CAS and from then
  /// on `seen`/`max`/`samples` take relaxed atomic accesses (summarize()
  /// may read mid-stream by design; see the class comment). `rng` is the
  /// one plain field — only ever touched by the thread whose CAS won the
  /// slot, which is exactly the ownership discipline the CAS encodes.
  struct Slot {
    std::atomic<std::uint64_t> owner{0};  ///< hashed thread id; 0 = free
    std::atomic<std::uint64_t> seen{0};   ///< samples offered to this slot
    std::atomic<double> max{0.0};
    std::uint64_t rng = 0;  ///< owner-thread-only reservoir RNG state
    std::vector<std::atomic<double>> samples;
  };

  /// This thread's slot, claiming one on first use (nullptr when all
  /// kSlots are owned by other live threads).
  Slot* slot_for_this_thread() noexcept;

  const std::size_t capacity_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> dropped_{0};
};

struct SearchProfile {
  std::size_t queries = 0;

  /// Sensed winner-to-runner-up margin, in unit currents.
  util::RunningStats margin_units;

  /// |sensed - nominal| of the winning row, in unit currents (captures
  /// leakage, clamp error and variation in one number).
  util::RunningStats winner_error_units;

  /// Fraction of queries where the circuit winner achieves the true
  /// (software) minimum distance.
  double argmin_agreement = 0.0;

  /// Histogram of winning nominal distances (index = distance, clipped).
  std::vector<std::size_t> winner_distance_histogram;

  /// Fixed-point ScL solve behaviour during the replay (one solve per row
  /// per circuit-fidelity query; all zero at nominal fidelity, where no
  /// solves run). Surfaces what the crossbar's damped iteration used to
  /// cap silently: how many iterations the solves took and how many hit
  /// the cap without meeting the tolerance.
  std::uint64_t scl_solves = 0;
  double scl_mean_iterations = 0.0;
  std::uint64_t scl_non_converged = 0;
};

/// Replays `queries` against the engine and aggregates search-quality
/// statistics. The engine must be configured and loaded; queries are
/// evaluated at the engine's configured fidelity.
SearchProfile profile_searches(FerexEngine& engine,
                               std::span<const std::vector<int>> queries,
                               std::size_t histogram_bins = 32);

}  // namespace ferex::core
