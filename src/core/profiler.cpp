#include "core/profiler.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

namespace ferex::core {

namespace {

/// Nonzero key for the calling thread (0 marks a free slot).
std::uint64_t thread_key() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1u;
}

/// Linear-interpolated percentile over sorted samples — the same
/// convention as benchjson::percentile_sorted (kept local: src never
/// includes bench headers).
double percentile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// xorshift64 — cheap per-slot RNG for reservoir eviction; only the slot
/// owner thread ever touches its state.
std::uint64_t xorshift64(std::uint64_t x) noexcept {
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return x;
}

}  // namespace

LatencyReservoir::LatencyReservoir(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      slots_(kSlots) {
  for (auto& slot : slots_) {
    slot.samples = std::vector<std::atomic<double>>(capacity_);
  }
}

LatencyReservoir::Slot* LatencyReservoir::slot_for_this_thread() noexcept {
  // Per-(thread, reservoir) slot cache. An entry can go stale when a
  // reservoir is destroyed and another is constructed at the same
  // address, so a cache hit is only trusted when the slot still carries
  // this thread's key.
  thread_local std::unordered_map<const LatencyReservoir*, std::size_t>
      slot_cache;
  const std::uint64_t key = thread_key();
  try {
    const auto it = slot_cache.find(this);
    if (it != slot_cache.end() &&
        slots_[it->second].owner.load(std::memory_order_relaxed) == key) {
      return &slots_[it->second];
    }
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      std::uint64_t expected = 0;
      if (slots_[i].owner.compare_exchange_strong(
              expected, key, std::memory_order_relaxed) ||
          expected == key) {
        slots_[i].rng = key;
        slot_cache[this] = i;
        return &slots_[i];
      }
    }
  } catch (...) {
    // Allocation failure in the cache: treat as slot exhaustion.
  }
  return nullptr;
}

void LatencyReservoir::record(double sample_us) noexcept {
  Slot* slot = slot_for_this_thread();
  if (slot == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n =
      slot->seen.fetch_add(1, std::memory_order_relaxed) + 1;
  double prev_max = slot->max.load(std::memory_order_relaxed);
  while (sample_us > prev_max &&
         !slot->max.compare_exchange_weak(prev_max, sample_us,
                                          std::memory_order_relaxed)) {
  }
  if (n <= capacity_) {
    slot->samples[n - 1].store(sample_us, std::memory_order_relaxed);
    return;
  }
  // Reservoir step: replace a random kept sample with probability
  // capacity / n, so the kept set stays a uniform sample of the stream.
  slot->rng = xorshift64(slot->rng);
  const std::uint64_t r = slot->rng % n;
  if (r < capacity_) {
    slot->samples[r].store(sample_us, std::memory_order_relaxed);
  }
}

LatencyReservoir::Summary LatencyReservoir::summarize() const {
  Summary summary;
  summary.dropped = dropped_.load(std::memory_order_relaxed);
  std::vector<double> merged;
  for (const auto& slot : slots_) {
    if (slot.owner.load(std::memory_order_relaxed) == 0) continue;
    const std::uint64_t seen = slot.seen.load(std::memory_order_relaxed);
    if (seen == 0) continue;
    summary.count += seen;
    summary.max_us =
        std::max(summary.max_us, slot.max.load(std::memory_order_relaxed));
    const std::size_t kept =
        static_cast<std::size_t>(std::min<std::uint64_t>(seen, capacity_));
    for (std::size_t i = 0; i < kept; ++i) {
      merged.push_back(slot.samples[i].load(std::memory_order_relaxed));
    }
  }
  summary.kept = merged.size();
  std::sort(merged.begin(), merged.end());
  summary.p50_us = percentile_sorted(merged, 50.0);
  summary.p95_us = percentile_sorted(merged, 95.0);
  summary.p99_us = percentile_sorted(merged, 99.0);
  return summary;
}

SearchProfile profile_searches(FerexEngine& engine,
                               std::span<const std::vector<int>> queries,
                               std::size_t histogram_bins) {
  if (!engine.configured() || engine.stored_count() == 0) {
    throw std::logic_error("profile_searches: engine not ready");
  }
  if (histogram_bins == 0) {
    throw std::invalid_argument("profile_searches: histogram_bins == 0");
  }
  SearchProfile profile;
  profile.winner_distance_histogram.assign(histogram_bins, 0);
  std::size_t agreements = 0;
  const circuit::SclSolveStats solves_before =
      engine.array()->scl_solve_stats();

  for (const auto& query : queries) {
    const auto currents = engine.row_currents(query);
    const double unit = engine.sense_unit();

    // Sensed winner and margin.
    std::size_t winner = 0;
    double best = std::numeric_limits<double>::infinity();
    double second = best;
    for (std::size_t r = 0; r < currents.size(); ++r) {
      if (currents[r] < best) {
        second = best;
        best = currents[r];
        winner = r;
      } else if (currents[r] < second) {
        second = currents[r];
      }
    }
    if (currents.size() > 1) {
      profile.margin_units.add((second - best) / unit);
    }

    // Deviation of the winner's sensed current from its nominal distance.
    const int nominal = engine.software_distance(query, winner);
    profile.winner_error_units.add(best / unit - nominal);

    // Does the sensed winner achieve the global software minimum?
    int min_distance = std::numeric_limits<int>::max();
    for (std::size_t r = 0; r < engine.stored_count(); ++r) {
      min_distance = std::min(min_distance, engine.software_distance(query, r));
    }
    if (nominal == min_distance) ++agreements;

    const auto bin = std::min<std::size_t>(static_cast<std::size_t>(
                                               std::max(nominal, 0)),
                                           histogram_bins - 1);
    ++profile.winner_distance_histogram[bin];
    ++profile.queries;
  }
  profile.argmin_agreement =
      profile.queries > 0
          ? static_cast<double>(agreements) /
                static_cast<double>(profile.queries)
          : 0.0;
  const circuit::SclSolveStats solves_after =
      engine.array()->scl_solve_stats();
  profile.scl_solves = solves_after.solves - solves_before.solves;
  profile.scl_non_converged =
      solves_after.non_converged - solves_before.non_converged;
  profile.scl_mean_iterations =
      profile.scl_solves > 0
          ? static_cast<double>(solves_after.iterations -
                                solves_before.iterations) /
                static_cast<double>(profile.scl_solves)
          : 0.0;
  return profile;
}

}  // namespace ferex::core
