#include "core/profiler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ferex::core {

SearchProfile profile_searches(FerexEngine& engine,
                               std::span<const std::vector<int>> queries,
                               std::size_t histogram_bins) {
  if (!engine.configured() || engine.stored_count() == 0) {
    throw std::logic_error("profile_searches: engine not ready");
  }
  if (histogram_bins == 0) {
    throw std::invalid_argument("profile_searches: histogram_bins == 0");
  }
  SearchProfile profile;
  profile.winner_distance_histogram.assign(histogram_bins, 0);
  std::size_t agreements = 0;
  const circuit::SclSolveStats solves_before =
      engine.array()->scl_solve_stats();

  for (const auto& query : queries) {
    const auto currents = engine.row_currents(query);
    const double unit = engine.sense_unit();

    // Sensed winner and margin.
    std::size_t winner = 0;
    double best = std::numeric_limits<double>::infinity();
    double second = best;
    for (std::size_t r = 0; r < currents.size(); ++r) {
      if (currents[r] < best) {
        second = best;
        best = currents[r];
        winner = r;
      } else if (currents[r] < second) {
        second = currents[r];
      }
    }
    if (currents.size() > 1) {
      profile.margin_units.add((second - best) / unit);
    }

    // Deviation of the winner's sensed current from its nominal distance.
    const int nominal = engine.software_distance(query, winner);
    profile.winner_error_units.add(best / unit - nominal);

    // Does the sensed winner achieve the global software minimum?
    int min_distance = std::numeric_limits<int>::max();
    for (std::size_t r = 0; r < engine.stored_count(); ++r) {
      min_distance = std::min(min_distance, engine.software_distance(query, r));
    }
    if (nominal == min_distance) ++agreements;

    const auto bin = std::min<std::size_t>(static_cast<std::size_t>(
                                               std::max(nominal, 0)),
                                           histogram_bins - 1);
    ++profile.winner_distance_histogram[bin];
    ++profile.queries;
  }
  profile.argmin_agreement =
      profile.queries > 0
          ? static_cast<double>(agreements) /
                static_cast<double>(profile.queries)
          : 0.0;
  const circuit::SclSolveStats solves_after =
      engine.array()->scl_solve_stats();
  profile.scl_solves = solves_after.solves - solves_before.solves;
  profile.scl_non_converged =
      solves_after.non_converged - solves_before.non_converged;
  profile.scl_mean_iterations =
      profile.scl_solves > 0
          ? static_cast<double>(solves_after.iterations -
                                solves_before.iterations) /
                static_cast<double>(profile.scl_solves)
          : 0.0;
  return profile;
}

}  // namespace ferex::core
