#include "core/ferex.hpp"
#include <algorithm>

#include <limits>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ferex::core {

FerexEngine::FerexEngine(FerexOptions options)
    : options_(options), rng_(options.seed), lta_(options.lta) {}

void FerexEngine::configure(csp::DistanceMetric metric, int bits) {
  metric_ = metric;
  bits_ = bits;
  configure(csp::DistanceMatrix::make(metric, bits));
}

void FerexEngine::configure(const csp::DistanceMatrix& dm) {
  report_ = {};
  auto encoding = encode::encode_distance_matrix(dm, options_.encoder, &report_);
  if (!encoding) {
    throw std::runtime_error("FerexEngine: no feasible encoding for " +
                             dm.name() + " within encoder limits");
  }
  dm_ = dm;
  encoding_ = std::move(*encoding);
  codec_.reset();  // monolithic path: one cell per element
  if (!database_.empty()) rebuild_array();
}

void FerexEngine::configure_composite(csp::DistanceMetric metric, int bits) {
  report_ = {};
  auto composite =
      encode::make_composite_encoding(metric, bits, options_.encoder);
  if (!composite) {
    throw std::runtime_error(
        "FerexEngine: no composite encoding for " + csp::to_string(metric) +
        " (metric not digit-separable, or base cell infeasible)");
  }
  metric_ = metric;
  bits_ = bits;
  dm_ = csp::DistanceMatrix::make(metric, bits);
  encoding_ = std::move(composite->base);
  codec_ = std::move(composite->codec);
  report_.fefets_per_cell =
      static_cast<int>(encoding_->fefets_per_cell() * codec_->subcells());
  if (!database_.empty()) rebuild_array();
}

void FerexEngine::store(std::vector<std::vector<int>> database) {
  if (database.empty()) {
    throw std::invalid_argument("FerexEngine::store: empty database");
  }
  const std::size_t dims = database.front().size();
  if (dims == 0) {
    throw std::invalid_argument("FerexEngine::store: zero-length vectors");
  }
  for (const auto& row : database) {
    if (row.size() != dims) {
      throw std::invalid_argument("FerexEngine::store: ragged database");
    }
  }
  database_ = std::move(database);
  live_.assign(database_.size(), 1);
  live_rows_ = database_.size();
  if (encoding_) rebuild_array();
}

device::VoltageLadder FerexEngine::make_ladder() const {
  // Shrink the ladder pitch when the encoding needs many levels, so the
  // highest threshold stays inside the device's programmable window (the
  // narrower margin is the physical cost of more levels per cell).
  const double vth_headroom =
      options_.circuit.fet.vth_max_v - options_.ladder_base_v - 0.05;
  const double max_step =
      vth_headroom / static_cast<double>(encoding_->ladder_levels());
  const double step = std::min(options_.ladder_step_v, max_step);
  return device::VoltageLadder(encoding_->ladder_levels(),
                               options_.ladder_base_v, step);
}

std::size_t FerexEngine::physical_dims() const {
  return database_.front().size() * (codec_ ? codec_->subcells() : 1);
}

void FerexEngine::rebuild_array() {
  array_ = std::make_unique<circuit::CrossbarArray>(
      database_.size(), physical_dims(), *encoding_, make_ladder(),
      options_.circuit, rng_);
  for (std::size_t r = 0; r < database_.size(); ++r) {
    if (live_[r] == 0) {
      // Removed slot: the fresh array already holds it erased; re-apply
      // the post-decoder mask (nothing is programmed).
      array_->erase_row(r);
      continue;
    }
    if (codec_) {
      array_->program_row(r, codec_->expand(database_[r]));
    } else {
      array_->program_row(r, database_[r]);
    }
  }
}

FerexEngine::EngineState FerexEngine::snapshot_state() const {
  EngineState state;
  state.database = database_;
  state.live = live_;
  state.query_serial = query_serial_;
  state.rng = rng_.state();
  if (array_) {
    const auto vth = array_->device_vth_offsets();
    const auto res = array_->device_resistances();
    state.vth_offsets.assign(vth.begin(), vth.end());
    state.resistances.assign(res.begin(), res.end());
  }
  return state;
}

void FerexEngine::restore_state(EngineState state) {
  if (!encoding_) {
    throw std::logic_error("FerexEngine::restore_state: configure() first");
  }
  if (state.live.size() != state.database.size()) {
    throw std::invalid_argument(
        "FerexEngine::restore_state: live mask does not match database");
  }
  database_ = std::move(state.database);
  live_ = std::move(state.live);
  live_rows_ = 0;
  for (const auto flag : live_) live_rows_ += flag != 0 ? 1 : 0;
  query_serial_ = state.query_serial;
  rng_.set_state(state.rng);
  if (database_.empty()) {
    array_.reset();
    return;
  }
  // Rebuild the array from the recorded fabrication, then re-program
  // each slot from the database (program_row is deterministic given the
  // per-device Vth offsets) — the restored array is device-for-device
  // identical to the one the snapshot was taken from.
  array_ = std::make_unique<circuit::CrossbarArray>(
      database_.size(), physical_dims(), *encoding_, make_ladder(),
      options_.circuit, std::move(state.vth_offsets),
      std::move(state.resistances));
  for (std::size_t r = 0; r < database_.size(); ++r) {
    if (live_[r] == 0) {
      array_->erase_row(r);
      continue;
    }
    if (codec_) {
      array_->program_row(r, codec_->expand(database_[r]));
    } else {
      array_->program_row(r, database_[r]);
    }
  }
}

std::size_t FerexEngine::compact() {
  if (!array_ || live_rows_ == database_.size()) return 0;
  const std::size_t freed = database_.size() - live_rows_;
  std::vector<std::vector<int>> survivors;
  survivors.reserve(live_rows_);
  for (std::size_t r = 0; r < database_.size(); ++r) {
    if (live_[r] != 0) survivors.push_back(std::move(database_[r]));
  }
  // Bit-identity contract: equal to configure()+store(survivors) on a
  // fresh engine — which draws its variation from a generator seeded at
  // construction, so re-seed before rebuilding. query_serial_ is
  // deliberately kept (the serving layer's ordinal stream continues).
  rng_ = util::Rng(options_.seed);
  if (survivors.empty()) {
    database_.clear();
    live_.clear();
    live_rows_ = 0;
    array_.reset();
    return freed;
  }
  database_ = std::move(survivors);
  live_.assign(database_.size(), 1);
  live_rows_ = database_.size();
  rebuild_array();
  return freed;
}

EngineInsert FerexEngine::insert(std::span<const int> vector) {
  if (!encoding_) {
    throw std::logic_error("FerexEngine::insert: configure() first");
  }
  if (vector.empty()) {
    throw std::invalid_argument("FerexEngine::insert: empty vector");
  }
  if (!database_.empty() && vector.size() != database_.front().size()) {
    throw std::invalid_argument("FerexEngine::insert: vector.size() != dims");
  }
  // Validate the logical alphabet before mutating anything (append_row
  // re-checks the physical values, but the codec expands with only an
  // assert, and a failed insert must leave the engine untouched).
  const std::size_t alphabet =
      codec_ ? codec_->logical_levels() : encoding_->stored_count();
  for (const int v : vector) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet) {
      throw std::out_of_range("FerexEngine::insert: value out of range");
    }
  }
  // Reuse the lowest freed slot before growing: reviving a removed slot
  // is exactly update() on it — already erased, so the receipt charges
  // programming only — and keeps the slot's own device variation, so
  // searches equal a fresh store() of the same layout.
  if (live_rows_ < database_.size()) {
    std::size_t slot = 0;
    while (live_[slot] != 0) ++slot;
    return {slot, update(slot, vector)};
  }
  database_.emplace_back(vector.begin(), vector.end());
  live_.push_back(1);
  ++live_rows_;
  try {
    if (database_.size() == 1) {
      // First row establishes the geometry; building the one-row array
      // draws the same variation prefix a larger store() would.
      rebuild_array();
    } else if (codec_) {
      array_->append_row(codec_->expand(vector), rng_);
    } else {
      array_->append_row(vector, rng_);
    }
  } catch (...) {
    // Keep the no-mutation-on-throw guarantee on every path (a failed
    // first-row rebuild must not leave a phantom row behind a null
    // array, where a retry would take the append branch).
    database_.pop_back();
    live_.pop_back();
    --live_rows_;
    throw;
  }
  const std::size_t row = database_.size() - 1;
  return {row, row_write_cost(row)};
}

circuit::WriteCost FerexEngine::remove(std::size_t row) {
  if (!array_) {
    throw std::logic_error("FerexEngine::remove: configure() + store() first");
  }
  if (row >= database_.size()) {
    throw std::out_of_range("FerexEngine::remove: row");
  }
  if (live_[row] == 0) {
    throw std::logic_error("FerexEngine::remove: row already removed");
  }
  array_->erase_row(row);
  live_[row] = 0;
  --live_rows_;
  return row_erase_cost();
}

circuit::WriteCost FerexEngine::update(std::size_t row,
                                       std::span<const int> vector) {
  if (!array_) {
    throw std::logic_error("FerexEngine::update: configure() + store() first");
  }
  if (row >= database_.size()) {
    throw std::out_of_range("FerexEngine::update: row");
  }
  if (vector.size() != database_.front().size()) {
    throw std::invalid_argument("FerexEngine::update: vector.size() != dims");
  }
  const std::size_t alphabet =
      codec_ ? codec_->logical_levels() : encoding_->stored_count();
  for (const int v : vector) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet) {
      throw std::out_of_range("FerexEngine::update: value out of range");
    }
  }
  const bool was_live = live_[row] != 0;
  if (codec_) {
    array_->overwrite_row(row, codec_->expand(vector));
  } else {
    array_->overwrite_row(row, vector);
  }
  database_[row].assign(vector.begin(), vector.end());
  if (!was_live) {
    live_[row] = 1;
    ++live_rows_;
  }
  // Erase + program-and-verify: a live slot pays the erase pulse before
  // reprogramming; a removed slot is already erased and pays only the
  // programming half (the erase was charged by remove()).
  circuit::WriteCost cost = row_write_cost(row);
  if (was_live) {
    const auto erase = row_erase_cost();
    cost.pulses += erase.pulses;
    cost.energy_j += erase.energy_j;
    cost.latency_s += erase.latency_s;
  }
  return cost;
}

util::Rng FerexEngine::query_rng(std::uint64_t ordinal) const noexcept {
  // Every query ordinal gets an independent comparator-noise stream
  // derived from the engine seed, so results do not depend on the order
  // or thread interleaving in which queries execute.
  return util::Rng(options_.seed ^
                   (0x9e3779b97f4a7c15ULL * (ordinal + 1)));
}

bool FerexEngine::intra_query_parallel() const noexcept {
  return options_.fidelity == SearchFidelity::kCircuit &&
         options_.intra_query_min_devices > 0 && array_ != nullptr &&
         array_->device_count() >= options_.intra_query_min_devices &&
         util::pool_width() > 1;
}

std::vector<SearchResult> FerexEngine::search_hits_expanded(
    std::span<const int> query, std::size_t k, util::Rng* rng,
    bool parallel_rows) const {
  std::vector<SearchResult> hits;
  hits.reserve(k);
  // The post-decoder mask rides along on every decision: removed rows
  // are skipped without a comparator-noise draw, so live rows sense
  // exactly what they would in an array holding only the live rows.
  const auto live = array_->live_mask();
  if (options_.fidelity == SearchFidelity::kCircuit) {
    const auto currents = array_->search(query, parallel_rows);
    const auto decisions = lta_.decide_k_detailed(
        currents, array_->unit_current_a(), k, rng, live);
    for (const auto& decision : decisions) {
      SearchResult hit;
      hit.nearest = decision.winner;
      hit.winner_current_a = decision.winner_current_a;
      hit.margin_a = decision.margin_a;
      hit.nominal_distance = array_->nominal_distance(query, hit.nearest);
      hits.push_back(hit);
    }
  } else {
    // Nominal fidelity: exact integer distance arithmetic, ideal LTA.
    const auto distances = array_->nominal_distances(query);
    const std::vector<double> currents(distances.begin(), distances.end());
    const auto decisions = lta_.decide_k_detailed(currents, 1.0, k, nullptr,
                                                  live);
    for (const auto& decision : decisions) {
      SearchResult hit;
      hit.nearest = decision.winner;
      hit.winner_current_a = decision.winner_current_a;
      hit.margin_a = decision.margin_a;
      hit.nominal_distance = distances[hit.nearest];
      hits.push_back(hit);
    }
  }
  return hits;
}

SearchResult FerexEngine::search_expanded(std::span<const int> query,
                                          util::Rng* rng,
                                          bool parallel_rows) const {
  return search_hits_expanded(query, 1, rng, parallel_rows).front();
}

SearchResult FerexEngine::search(std::span<const int> query) {
  if (!array_) {
    throw std::logic_error("FerexEngine::search: configure() + store() first");
  }
  if (live_rows_ == 0) {
    throw std::logic_error("FerexEngine::search: no live rows");
  }
  // Validate before consuming an ordinal, so a rejected query leaves the
  // noise-stream sequence exactly where it was (batch does the same).
  check_query(query);
  return search_validated(query, query_serial_++, intra_query_parallel());
}

void FerexEngine::check_query(std::span<const int> query) const {
  // Full validation before anything irreversible: the codec expands
  // element-wise with only an assert on the value range (UB in release
  // builds), and every search entry point consumes a noise-stream
  // ordinal — so both length and alphabet must be checked first, keeping
  // sequential and batched ordinal accounting in lockstep on errors.
  if (query.size() != database_.front().size()) {
    throw std::invalid_argument("FerexEngine: query.size() != dims");
  }
  const auto alphabet = dm_->search_count();
  for (const int v : query) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet) {
      throw std::out_of_range("FerexEngine: query value out of range");
    }
  }
}

std::vector<SearchResult> FerexEngine::search_hits_validated(
    std::span<const int> query, std::size_t k, std::uint64_t ordinal,
    bool parallel_rows) const {
  std::vector<int> expanded;
  if (codec_) {
    expanded = codec_->expand(query);
    query = expanded;
  }
  util::Rng rng = query_rng(ordinal);
  return search_hits_expanded(query, k, &rng, parallel_rows);
}

SearchResult FerexEngine::search_validated(std::span<const int> query,
                                           std::uint64_t ordinal,
                                           bool parallel_rows) const {
  return search_hits_validated(query, 1, ordinal, parallel_rows).front();
}

SearchResult FerexEngine::search_at(std::span<const int> query,
                                    std::uint64_t ordinal,
                                    std::optional<bool> parallel_rows) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::search_at: configure() + store() first");
  }
  if (live_rows_ == 0) {
    throw std::logic_error("FerexEngine::search_at: no live rows");
  }
  check_query(query);
  return search_validated(query, ordinal,
                          parallel_rows.value_or(intra_query_parallel()));
}

std::vector<SearchResult> FerexEngine::search_hits_at(
    std::span<const int> query, std::size_t k, std::uint64_t ordinal,
    std::optional<bool> parallel_rows) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::search_hits_at: configure() + store() first");
  }
  if (k == 0 || k > live_rows_) {
    throw std::invalid_argument("FerexEngine::search_hits_at: bad k");
  }
  check_query(query);
  return search_hits_validated(query, k, ordinal,
                               parallel_rows.value_or(intra_query_parallel()));
}

bool FerexEngine::inner_fan_for_batch(std::size_t batch_size) const noexcept {
  // When the batch alone cannot saturate the pool, keep the queries
  // serial and fan each query's rows instead — but only when the row fan
  // is at least as wide as the query fan it replaces. Results are
  // bit-identical either way (per-query noise is ordinal-addressed, rows
  // share no mutable state), so the choice is purely a scheduling one.
  return batch_size > 0 && batch_size < util::pool_width() &&
         intra_query_parallel() && array_->rows() >= batch_size;
}

std::vector<SearchResult> FerexEngine::search_batch(
    std::span<const std::vector<int>> queries) {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::search_batch: configure() + store() first");
  }
  if (live_rows_ == 0) {
    throw std::logic_error("FerexEngine::search_batch: no live rows");
  }
  // Validate before consuming ordinals, so a rejected batch leaves the
  // noise-stream sequence exactly where it was.
  for (const auto& q : queries) check_query(q);
  const std::uint64_t base = query_serial_;
  query_serial_ += queries.size();
  return search_batch_validated(queries, base);
}

std::vector<SearchResult> FerexEngine::search_batch_at(
    std::span<const std::vector<int>> queries,
    std::uint64_t base_ordinal) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::search_batch_at: configure() + store() first");
  }
  if (live_rows_ == 0) {
    throw std::logic_error("FerexEngine::search_batch_at: no live rows");
  }
  for (const auto& q : queries) check_query(q);
  return search_batch_validated(queries, base_ordinal);
}

std::vector<SearchResult> FerexEngine::search_batch_validated(
    std::span<const std::vector<int>> queries,
    std::uint64_t base_ordinal) const {
  std::vector<SearchResult> results(queries.size());
  if (queries.empty()) return results;

  // Codec-expand the whole batch up front: one pass over the queries,
  // after which the workers run over plain spans with no allocation on
  // the hot path.
  std::vector<std::vector<int>> expanded;
  if (codec_) {
    expanded.reserve(queries.size());
    for (const auto& q : queries) expanded.push_back(codec_->expand(q));
  }

  if (inner_fan_for_batch(queries.size())) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      util::Rng rng = query_rng(base_ordinal + i);
      results[i] = search_expanded(codec_ ? expanded[i] : queries[i], &rng,
                                   /*parallel_rows=*/true);
    }
    return results;
  }
  util::parallel_for(queries.size(), [&](std::size_t i) {
    util::Rng rng = query_rng(base_ordinal + i);
    results[i] = search_expanded(codec_ ? expanded[i] : queries[i], &rng,
                                 /*parallel_rows=*/false);
  });
  return results;
}

std::vector<std::size_t> FerexEngine::search_k(std::span<const int> query,
                                               std::size_t k) {
  if (!array_) {
    throw std::logic_error("FerexEngine::search_k: configure() + store() first");
  }
  // k joins the query in the validated-before-any-ordinal set (the seed
  // threw from decide_k only after consuming the ordinal). Bounded by
  // the live rows: removed slots cannot be hits.
  if (k == 0 || k > live_rows_) {
    throw std::invalid_argument("FerexEngine::search_k: bad k");
  }
  check_query(query);
  return search_k_validated(query, k, query_serial_++);
}

std::vector<std::size_t> FerexEngine::search_k_validated(
    std::span<const int> query, std::size_t k, std::uint64_t ordinal) const {
  const auto hits =
      search_hits_validated(query, k, ordinal, intra_query_parallel());
  std::vector<std::size_t> winners;
  winners.reserve(hits.size());
  for (const auto& hit : hits) winners.push_back(hit.nearest);
  return winners;
}

std::vector<std::size_t> FerexEngine::search_k_at(std::span<const int> query,
                                                  std::size_t k,
                                                  std::uint64_t ordinal) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::search_k_at: configure() + store() first");
  }
  if (k == 0 || k > live_rows_) {
    throw std::invalid_argument("FerexEngine::search_k_at: bad k");
  }
  check_query(query);
  return search_k_validated(query, k, ordinal);
}

std::vector<double> FerexEngine::row_currents(std::span<const int> query) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::row_currents: configure() + store() first");
  }
  check_query(query);
  std::vector<int> expanded;
  if (codec_) {
    expanded = codec_->expand(query);
    query = expanded;
  }
  if (options_.fidelity == SearchFidelity::kCircuit) {
    return array_->search(query, intra_query_parallel());
  }
  const auto distances = array_->nominal_distances(query);
  std::vector<double> currents(distances.begin(), distances.end());
  // The circuit path's disabled-branch sentinel, mirrored: a removed
  // slot's stale stored values must never look like a finite distance.
  for (std::size_t r = 0; r < currents.size(); ++r) {
    if (live_[r] == 0) {
      currents[r] = std::numeric_limits<double>::infinity();
    }
  }
  return currents;
}

double FerexEngine::sense_unit() const {
  if (!array_) {
    throw std::logic_error("FerexEngine::sense_unit: nothing stored");
  }
  return options_.fidelity == SearchFidelity::kCircuit
             ? array_->unit_current_a()
             : 1.0;
}

int FerexEngine::software_distance(std::span<const int> query,
                                   std::size_t row) const {
  if (row >= database_.size()) {
    throw std::out_of_range("FerexEngine::software_distance: row");
  }
  const auto& stored = database_[row];
  if (query.size() != stored.size()) {
    throw std::invalid_argument("FerexEngine::software_distance: length");
  }
  int total = 0;
  for (std::size_t d = 0; d < stored.size(); ++d) {
    // For custom DMs fall back to the matrix entry; for standard metrics
    // this equals reference_distance.
    total += dm_->at(static_cast<std::size_t>(query[d]),
                     static_cast<std::size_t>(stored[d]));
  }
  return total;
}

int FerexEngine::nominal_distance(std::span<const int> query,
                                  std::size_t row) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::nominal_distance: configure() + store() first");
  }
  if (row >= database_.size()) {
    throw std::out_of_range("FerexEngine::nominal_distance: row");
  }
  check_query(query);
  if (codec_) {
    return array_->nominal_distance(codec_->expand(query), row);
  }
  return array_->nominal_distance(query, row);
}

void FerexEngine::validate_query(std::span<const int> query) const {
  if (!array_) {
    throw std::logic_error(
        "FerexEngine::validate_query: configure() + store() first");
  }
  check_query(query);
}

circuit::SearchCost FerexEngine::search_cost() const {
  if (!encoding_ || database_.empty()) {
    throw std::logic_error("FerexEngine::search_cost: nothing stored");
  }
  circuit::SearchOpSpec spec;
  spec.rows = database_.size();
  spec.dims = database_.front().size() * (codec_ ? codec_->subcells() : 1);
  spec.fefets_per_cell = encoding_->fefets_per_cell();
  spec.bits_per_cell = bits_ > 0 ? static_cast<std::size_t>(bits_) : 1;
  spec.avg_vds_multiple = 0.5 * (1.0 + encoding_->max_vds_multiple());
  const circuit::EnergyDelayModel model(options_.circuit.cell,
                                        options_.parasitics,
                                        options_.circuit.opamp, options_.lta);
  return model.search_op(spec);
}

circuit::WriteDriver FerexEngine::write_driver() const {
  circuit::WriteDriverParams params;
  params.device.vth_low_v = options_.circuit.fet.vth_min_v;
  params.device.vth_high_v = options_.circuit.fet.vth_max_v;
  params.vth_tolerance_v = options_.circuit.program_tolerance_v;
  return circuit::WriteDriver(params);
}

circuit::WriteCost FerexEngine::row_erase_cost() const {
  return write_driver().erase_row(array_->dims() *
                                  array_->fefets_per_cell());
}

circuit::WriteCost FerexEngine::row_write_cost(std::size_t row) const {
  const circuit::WriteDriver driver = write_driver();

  std::vector<double> targets;
  targets.reserve(array_->dims() * array_->fefets_per_cell());
  for (std::size_t d = 0; d < array_->dims(); ++d) {
    const auto value = static_cast<std::size_t>(array_->stored_value(row, d));
    for (std::size_t i = 0; i < array_->fefets_per_cell(); ++i) {
      const auto level =
          static_cast<std::size_t>(encoding_->store_level(value, i));
      targets.push_back(array_->ladder().vth(level));
    }
  }
  return driver.program_row(targets);
}

circuit::WriteCost FerexEngine::program_cost() const {
  if (!array_) {
    throw std::logic_error("FerexEngine::program_cost: nothing stored");
  }
  circuit::WriteCost total;
  for (std::size_t r = 0; r < array_->rows(); ++r) {
    if (live_[r] == 0) continue;  // removed slots hold no programmed data
    const auto row_cost = row_write_cost(r);
    total.pulses += row_cost.pulses;
    total.energy_j += row_cost.energy_j;
    total.latency_s += row_cost.latency_s;
  }
  return total;
}

const encode::CellEncoding& FerexEngine::encoding() const {
  if (!encoding_) throw std::logic_error("FerexEngine: not configured");
  return *encoding_;
}

const csp::DistanceMatrix& FerexEngine::distance_matrix() const {
  if (!dm_) throw std::logic_error("FerexEngine: not configured");
  return *dm_;
}

}  // namespace ferex::core
