// GPU baseline cost model (RTX-3090 class) for the Fig. 8(b)/(c)
// speedup and energy-efficiency comparisons.
//
// The paper measures HDC inference on an Nvidia 3090 through the PyTorch
// profiler and nvidia-smi. Offline we substitute an analytical roofline:
// the distance kernel is memory-bandwidth bound (it streams the class
// prototypes and query batch once), and small kernels pay a fixed
// launch + framework overhead that dominates at the batch sizes
// associative inference uses — that overhead is precisely why a CiM
// macro achieves two-orders-of-magnitude speedups on this workload.
#pragma once

#include <cstddef>

namespace ferex::baseline {

struct GpuParams {
  double mem_bandwidth_b_per_s = 936e9;  ///< GDDR6X peak bandwidth
  double peak_flops = 35.6e12;           ///< FP32 peak
  double board_power_w = 350.0;          ///< TDP drawn during the kernel
  double idle_power_w = 30.0;            ///< contribution outside kernels
  double kernel_launch_s = 8e-6;         ///< per-launch latency (driver)
  double framework_overhead_s = 25e-6;   ///< per-batch PyTorch dispatch
  std::size_t kernels_per_batch = 3;     ///< encode, distance, argmin
};

struct GpuCost {
  double latency_s = 0.0;
  double energy_j = 0.0;
};

/// Roofline + overhead model of HDC inference on the GPU.
class GpuCostModel {
 public:
  explicit GpuCostModel(GpuParams params = {}) : params_(params) {}

  const GpuParams& params() const noexcept { return params_; }

  /// Cost of classifying `batch` queries against `classes` prototypes of
  /// dimensionality `dim` (bytes_per_element: 4 for FP32, 1 for int8).
  ///
  /// Traffic: prototypes are re-streamed per batch (they do not persist
  /// in L2 across kernels at these sizes), queries in, scores out.
  /// Compute: ~3 ops per element pair (sub, square/abs, add).
  GpuCost hdc_inference(std::size_t batch, std::size_t classes,
                        std::size_t dim,
                        std::size_t bytes_per_element = 4) const;

 private:
  GpuParams params_;
};

}  // namespace ferex::baseline
