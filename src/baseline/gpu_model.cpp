#include "baseline/gpu_model.hpp"

#include <algorithm>

namespace ferex::baseline {

GpuCost GpuCostModel::hdc_inference(std::size_t batch, std::size_t classes,
                                    std::size_t dim,
                                    std::size_t bytes_per_element) const {
  const double b = static_cast<double>(batch);
  const double k = static_cast<double>(classes);
  const double d = static_cast<double>(dim);
  const double elem = static_cast<double>(bytes_per_element);

  // Memory traffic per batch: query batch in, prototype bank in, distance
  // matrix out (FP32 scores).
  const double bytes = b * d * elem + k * d * elem + b * k * 4.0;
  const double t_mem = bytes / params_.mem_bandwidth_b_per_s;

  // Compute: ~3 ops per (query, class, dim) element pair.
  const double flops = 3.0 * b * k * d;
  const double t_compute = flops / params_.peak_flops;

  // Overheads: fixed per batch, regardless of size.
  const double t_overhead =
      params_.framework_overhead_s +
      static_cast<double>(params_.kernels_per_batch) * params_.kernel_launch_s;

  GpuCost cost;
  cost.latency_s = t_overhead + std::max(t_mem, t_compute);
  // Board power during the kernel window; idle floor over the overhead.
  cost.energy_j = params_.board_power_w * std::max(t_mem, t_compute) +
                  params_.idle_power_w * t_overhead +
                  params_.board_power_w * 0.3 * t_overhead;
  return cost;
}

}  // namespace ferex::baseline
