#include "arch/banked_am.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/parallel.hpp"

namespace ferex::arch {

BankedAm::BankedAm(BankedOptions options)
    : options_(options), global_lta_(options.engine.lta) {
  if (options_.bank_rows == 0) {
    throw std::invalid_argument("BankedAm: bank_rows == 0");
  }
}

void BankedAm::configure(csp::DistanceMetric metric, int bits) {
  metric_ = metric;
  bits_ = bits;
  configured_ = true;
  for (auto& bank : banks_) bank->configure(metric, bits);
}

void BankedAm::store(const std::vector<std::vector<int>>& database) {
  if (!configured_) {
    throw std::logic_error("BankedAm::store: configure() first");
  }
  if (database.empty()) {
    throw std::invalid_argument("BankedAm::store: empty database");
  }
  banks_.clear();
  bank_offsets_.clear();
  total_rows_ = database.size();
  const std::size_t bank_count =
      (database.size() + options_.bank_rows - 1) / options_.bank_rows;
  for (std::size_t start = 0; start < database.size();
       start += options_.bank_rows) {
    const std::size_t end =
        std::min(start + options_.bank_rows, database.size());
    std::vector<std::vector<int>> slice(database.begin() + start,
                                        database.begin() + end);
    auto engine_options = options_.engine;
    // Decorrelate device variation across macros.
    engine_options.seed = options_.engine.seed + 0x9e37 * (start + 1);
    // With several banks this layer owns intra-query parallelism (it
    // fans banks); per-bank row fan-out on top would nest worker pools.
    if (bank_count > 1) engine_options.intra_query_min_devices = 0;
    auto bank = std::make_unique<core::FerexEngine>(engine_options);
    bank->configure(metric_, bits_);
    bank->store(std::move(slice));
    banks_.push_back(std::move(bank));
    bank_offsets_.push_back(start);
  }
}

std::size_t BankedAm::global_index(std::size_t bank, std::size_t local) const {
  return bank_offsets_[bank] + local;
}

bool BankedAm::parallel_banks_worthwhile() const noexcept {
  const std::size_t threshold = options_.engine.intra_query_min_devices;
  if (banks_.size() <= 1 || threshold == 0 || util::pool_width() <= 1 ||
      options_.engine.fidelity != core::SearchFidelity::kCircuit) {
    return false;
  }
  std::size_t devices = 0;
  for (const auto& bank : banks_) {
    if (const auto* array = bank->array()) devices += array->device_count();
  }
  return devices >= threshold;
}

BankedSearchResult BankedAm::search_ordinal(std::span<const int> query,
                                            std::uint64_t ordinal,
                                            bool parallel_banks,
                                            bool in_query_pool) const {
  // Stage 1: every bank's local LTA resolves its winner in parallel.
  // Each bank draws its comparator noise from its own seed at this query
  // ordinal, so banks stay decorrelated and the result is independent of
  // execution order — fanning the banks across the pool is bit-identical
  // to the serial sweep.
  std::vector<double> winner_currents(banks_.size());
  std::vector<std::size_t> winner_locals(banks_.size());
  // Inside a query fan-out, force the banks' row loops serial so pools
  // never nest; otherwise the engines keep their own heuristic (multi-
  // bank engines have row fan-out disabled at store(), single-bank ones
  // may still fan their rows).
  const std::optional<bool> bank_parallel_rows =
      in_query_pool ? std::optional<bool>(false) : std::nullopt;
  const auto run_bank = [&](std::size_t b) {
    const auto r = banks_[b]->search_at(query, ordinal, bank_parallel_rows);
    winner_currents[b] = r.winner_current_a;
    winner_locals[b] = r.nearest;
  };
  if (parallel_banks && banks_.size() > 1) {
    util::parallel_for(banks_.size(), run_bank);
  } else {
    for (std::size_t b = 0; b < banks_.size(); ++b) run_bank(b);
  }
  // Stage 2: a small global comparator over the bank winners.
  const auto decision =
      global_lta_.decide(winner_currents, banks_.front()->sense_unit(),
                         nullptr);
  BankedSearchResult out;
  out.bank = decision.winner;
  out.nearest = global_index(decision.winner, winner_locals[decision.winner]);
  out.winner_current_a = decision.winner_current_a;
  return out;
}

void BankedAm::check_query(std::span<const int> query) const {
  // Reject before any ordinal is consumed, so a bad query cannot shift
  // the per-bank noise-stream sequence (see search_ordinal).
  if (query.size() != banks_.front()->dims()) {
    throw std::invalid_argument("BankedAm: query.size() != dims");
  }
  const auto alphabet = banks_.front()->distance_matrix().search_count();
  for (const int v : query) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet) {
      throw std::out_of_range("BankedAm: query value out of range");
    }
  }
}

BankedSearchResult BankedAm::search(std::span<const int> query) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search: store() first");
  }
  check_query(query);
  return search_ordinal(query, query_serial_++, parallel_banks_worthwhile(),
                        /*in_query_pool=*/false);
}

std::vector<BankedSearchResult> BankedAm::search_batch(
    std::span<const std::vector<int>> queries) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_batch: store() first");
  }
  std::vector<BankedSearchResult> results(queries.size());
  if (queries.empty()) return results;
  for (const auto& q : queries) check_query(q);
  const std::uint64_t base = query_serial_;
  query_serial_ += queries.size();
  // Small batches cannot saturate the pool across queries alone; run
  // them serially and fan each query's banks (or, single-bank, its
  // rows) instead — but only when the inner fan-out is at least as wide
  // as the query fan-out it replaces, else fanning queries wins. Either
  // schedule yields bit-identical results.
  const bool inner_fan_wider =
      banks_.size() > 1 ? banks_.size() >= queries.size()
                        : banks_.front()->intra_query_parallel();
  if (queries.size() < util::pool_width() && inner_fan_wider &&
      (banks_.size() == 1 || parallel_banks_worthwhile())) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = search_ordinal(queries[i], base + i,
                                  /*parallel_banks=*/banks_.size() > 1,
                                  /*in_query_pool=*/false);
    }
    return results;
  }
  util::parallel_for(queries.size(), [&](std::size_t i) {
    results[i] = search_ordinal(queries[i], base + i,
                                /*parallel_banks=*/false,
                                /*in_query_pool=*/true);
  });
  return results;
}

std::vector<std::size_t> BankedAm::search_k(std::span<const int> query,
                                            std::size_t k) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_k: store() first");
  }
  if (k == 0 || k > total_rows_) {
    throw std::invalid_argument("BankedAm::search_k: bad k");
  }
  // Each bank holds its sensed row currents (the post-decoder can mask
  // individual row branches); the global stage iteratively extracts the
  // minimum across the concatenated currents. Banks fire concurrently,
  // as in search().
  std::vector<std::vector<double>> per_bank(banks_.size());
  const auto run_bank = [&](std::size_t b) {
    per_bank[b] = banks_[b]->row_currents(query);
  };
  if (parallel_banks_worthwhile()) {
    util::parallel_for(banks_.size(), run_bank);
  } else {
    for (std::size_t b = 0; b < banks_.size(); ++b) run_bank(b);
  }
  std::vector<double> all;
  all.reserve(total_rows_);
  for (const auto& currents : per_bank) {
    all.insert(all.end(), currents.begin(), currents.end());
  }
  return global_lta_.decide_k(all, banks_.front()->sense_unit(), k, nullptr);
}

double BankedAm::search_delay_s() const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_delay_s: store() first");
  }
  // Banks fire concurrently; the slowest bank gates the global stage.
  double slowest = 0.0;
  for (const auto& bank : banks_) {
    slowest = std::max(slowest, bank->search_cost().total_delay_s());
  }
  return slowest + global_lta_.delay_s(banks_.size());
}

double BankedAm::search_energy_j() const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_energy_j: store() first");
  }
  double total = 0.0;
  for (const auto& bank : banks_) {
    total += bank->search_cost().total_energy_j();
  }
  total += global_lta_.energy_j(banks_.size(),
                                global_lta_.delay_s(banks_.size()));
  return total;
}

}  // namespace ferex::arch
