#include "arch/banked_am.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>

#include "util/merge_topk.hpp"
#include "util/parallel.hpp"

namespace ferex::arch {

BankedAm::BankedAm(BankedOptions options)
    : options_(options), global_lta_(options.engine.lta) {
  if (options_.bank_rows == 0) {
    throw std::invalid_argument("BankedAm: bank_rows == 0");
  }
}

void BankedAm::configure(csp::DistanceMetric metric, int bits) {
  metric_ = metric;
  bits_ = bits;
  configured_ = true;
  for (auto& bank : banks_) bank->configure(metric, bits);
}

std::unique_ptr<core::FerexEngine> BankedAm::make_bank(
    std::size_t start, std::size_t bank_count) const {
  auto engine_options = options_.engine;
  // Decorrelate device variation across macros.
  engine_options.seed = options_.engine.seed + 0x9e37 * (start + 1);
  // With several banks this layer owns intra-query parallelism (it
  // fans banks); per-bank row fan-out on top would nest worker pools.
  if (bank_count > 1) engine_options.intra_query_min_devices = 0;
  auto bank = std::make_unique<core::FerexEngine>(engine_options);
  bank->configure(metric_, bits_);
  return bank;
}

void BankedAm::store(const std::vector<std::vector<int>>& database) {
  if (!configured_) {
    throw std::logic_error("BankedAm::store: configure() first");
  }
  if (database.empty()) {
    throw std::invalid_argument("BankedAm::store: empty database");
  }
  banks_.clear();
  bank_offsets_.clear();
  total_rows_ = database.size();
  const std::size_t bank_count =
      (database.size() + options_.bank_rows - 1) / options_.bank_rows;
  for (std::size_t start = 0; start < database.size();
       start += options_.bank_rows) {
    const std::size_t end =
        std::min(start + options_.bank_rows, database.size());
    std::vector<std::vector<int>> slice(database.begin() + start,
                                        database.begin() + end);
    auto bank = make_bank(start, bank_count);
    bank->store(std::move(slice));
    banks_.push_back(std::move(bank));
    bank_offsets_.push_back(start);
  }
}

BankedInsert BankedAm::insert(std::span<const int> vector) {
  if (!configured_) {
    throw std::logic_error("BankedAm::insert: configure() first");
  }
  if (!banks_.empty() && vector.size() != dims()) {
    // A fresh bank's engine would otherwise accept any length as its
    // first row; the banked database keeps one dimensionality.
    throw std::invalid_argument("BankedAm::insert: vector.size() != dims");
  }
  BankedInsert receipt;
  // Freed slots are reused before any growth: scan banks in order for a
  // removed slot (the engine picks its lowest) so the physical footprint
  // only grows when every slot is live.
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    if (banks_[b]->live_count() < banks_[b]->stored_count()) {
      const auto result = banks_[b]->insert(vector);
      receipt.cost = result.cost;
      receipt.bank = b;
      receipt.global_row = bank_offsets_[b] + result.row;
      reconcile_intra_query();
      return receipt;
    }
  }
  const bool need_new_bank =
      banks_.empty() || banks_.back()->stored_count() >= options_.bank_rows;
  if (need_new_bank) {
    // The new bank's first global row: every earlier bank is full, so
    // this is a multiple of bank_rows — the same `start` a fresh store()
    // of the concatenated database would feed the seed formula.
    const std::size_t start = total_rows_;
    auto bank = make_bank(start, banks_.size() + 1);
    receipt.cost = bank->insert(vector).cost;  // throws before state change
    banks_.push_back(std::move(bank));
    bank_offsets_.push_back(start);
  } else {
    receipt.cost = banks_.back()->insert(vector).cost;
  }
  receipt.bank = banks_.size() - 1;
  receipt.global_row = total_rows_++;
  reconcile_intra_query();
  return receipt;
}

BankedWrite BankedAm::remove(std::size_t global_row) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::remove: store() first");
  }
  if (global_row >= total_rows_) {
    throw std::out_of_range("BankedAm::remove: row");
  }
  const std::size_t b = bank_of(global_row);
  BankedWrite receipt;
  receipt.cost = banks_[b]->remove(global_row - bank_offsets_[b]);
  receipt.bank = b;
  receipt.global_row = global_row;
  reconcile_intra_query();
  return receipt;
}

BankedWrite BankedAm::update(std::size_t global_row,
                             std::span<const int> vector) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::update: store() first");
  }
  if (global_row >= total_rows_) {
    throw std::out_of_range("BankedAm::update: row");
  }
  if (vector.size() != dims()) {
    throw std::invalid_argument("BankedAm::update: vector.size() != dims");
  }
  const std::size_t b = bank_of(global_row);
  BankedWrite receipt;
  receipt.cost = banks_[b]->update(global_row - bank_offsets_[b], vector);
  receipt.bank = b;
  receipt.global_row = global_row;
  reconcile_intra_query();  // an update can revive an all-removed bank
  return receipt;
}

BankedAm::BankedState BankedAm::snapshot_state() const {
  BankedState state;
  state.query_serial = query_serial_;
  state.bank_offsets = bank_offsets_;
  state.banks.reserve(banks_.size());
  for (const auto& bank : banks_) state.banks.push_back(bank->snapshot_state());
  return state;
}

void BankedAm::restore_state(BankedState state) {
  if (!configured_) {
    throw std::logic_error("BankedAm::restore_state: configure() first");
  }
  if (state.bank_offsets.size() != state.banks.size()) {
    throw std::invalid_argument(
        "BankedAm::restore_state: offsets do not match banks");
  }
  banks_.clear();
  bank_offsets_ = std::move(state.bank_offsets);
  total_rows_ = 0;
  for (std::size_t b = 0; b < state.banks.size(); ++b) {
    auto bank = make_bank(bank_offsets_[b], state.banks.size());
    total_rows_ += state.banks[b].database.size();
    bank->restore_state(std::move(state.banks[b]));
    banks_.push_back(std::move(bank));
  }
  query_serial_ = state.query_serial;
  reconcile_intra_query();
}

std::size_t BankedAm::compact() {
  if (banks_.empty()) return 0;
  const std::size_t live = live_count();
  if (live == total_rows_) return 0;
  const std::size_t freed = total_rows_ - live;
  std::vector<std::vector<int>> survivors;
  survivors.reserve(live);
  for (const auto& bank : banks_) {
    auto state = bank->snapshot_state();
    for (std::size_t r = 0; r < state.database.size(); ++r) {
      if (state.live[r] != 0) survivors.push_back(std::move(state.database[r]));
    }
  }
  if (survivors.empty()) {
    // Every row was a tombstone: back to the configured-but-unstored
    // state (exactly a fresh BankedAm after configure()).
    banks_.clear();
    bank_offsets_.clear();
    total_rows_ = 0;
    return freed;
  }
  store(survivors);
  return freed;
}

std::size_t BankedAm::live_count() const noexcept {
  std::size_t live = 0;
  for (const auto& bank : banks_) live += bank->live_count();
  return live;
}

std::size_t BankedAm::live_bank_count() const noexcept {
  std::size_t live = 0;
  for (const auto& bank : banks_) live += bank->live_count() > 0 ? 1 : 0;
  return live;
}

void BankedAm::reconcile_intra_query() {
  // A bank may fan its own rows exactly when it is effectively the only
  // bank searching — otherwise this layer fans banks and row fan-out
  // underneath would nest pools. make_bank applies the same rule by
  // physical bank count at creation; live counts refine it as rows die
  // and revive.
  const std::size_t intra = live_bank_count() > 1
                                ? 0
                                : options_.engine.intra_query_min_devices;
  for (auto& bank : banks_) {
    bank->options().intra_query_min_devices = intra;
  }
}

std::size_t BankedAm::global_index(std::size_t bank, std::size_t local) const {
  return bank_offsets_[bank] + local;
}

std::size_t BankedAm::bank_of(std::size_t global_row) const {
  // bank_offsets_ is sorted; the row lives in the last bank whose first
  // row is not past it.
  const auto it = std::upper_bound(bank_offsets_.begin(), bank_offsets_.end(),
                                   global_row);
  return static_cast<std::size_t>(it - bank_offsets_.begin()) - 1;
}

bool BankedAm::parallel_banks_worthwhile() const noexcept {
  const std::size_t threshold = options_.engine.intra_query_min_devices;
  if (live_bank_count() <= 1 || threshold == 0 || util::pool_width() <= 1 ||
      options_.engine.fidelity != core::SearchFidelity::kCircuit) {
    return false;
  }
  std::size_t devices = 0;
  for (const auto& bank : banks_) {
    if (const auto* array = bank->array()) devices += array->device_count();
  }
  return devices >= threshold;
}

BankedSearchResult BankedAm::search_ordinal(std::span<const int> query,
                                            std::uint64_t ordinal,
                                            bool parallel_banks,
                                            bool in_query_pool) const {
  // Stage 1: every bank's local LTA resolves its winner in parallel.
  // Each bank draws its comparator noise from its own seed at this query
  // ordinal, so banks stay decorrelated and the result is independent of
  // execution order — fanning the banks across the pool is bit-identical
  // to the serial sweep.
  std::vector<core::SearchResult> bank_results(banks_.size());
  // Banks whose rows are all removed stop firing: they run no search,
  // draw no comparator noise, and are masked out of the global stage.
  std::vector<std::uint8_t> bank_live(banks_.size());
  std::size_t live_banks = 0;
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    bank_live[b] = banks_[b]->live_count() > 0 ? 1 : 0;
    live_banks += bank_live[b];
  }
  // Inside a query fan-out, force the banks' row loops serial so pools
  // never nest; otherwise the engines keep their own heuristic (multi-
  // bank engines have row fan-out disabled at store(), single-bank ones
  // may still fan their rows).
  const std::optional<bool> bank_parallel_rows =
      in_query_pool ? std::optional<bool>(false) : std::nullopt;
  const auto run_bank = [&](std::size_t b) {
    if (bank_live[b] == 0) return;
    bank_results[b] = banks_[b]->search_at(query, ordinal, bank_parallel_rows);
  };
  if (parallel_banks && banks_.size() > 1) {
    // Affine schedule: bank b lands on the same pool participant on
    // every query, so each bank's cached bias/current tables stay warm
    // in one thread's caches across a serving stream.
    util::parallel_for_affine(banks_.size(), run_bank);
  } else {
    for (std::size_t b = 0; b < banks_.size(); ++b) run_bank(b);
  }
  // Stage 2: the deterministic two-best merge over the bank winners
  // (shared with serve::ShardedIndex, which applies the same rule across
  // shards). A noiseless comparator over the already-sensed winners is
  // bit-identical to the global LTA stage with no rng attached.
  std::vector<util::GroupWinner> winners(banks_.size());
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    winners[b].live = bank_live[b] != 0;
    winners[b].sensed = winners[b].live
                            ? bank_results[b].winner_current_a
                            : std::numeric_limits<double>::infinity();
    winners[b].margin_a = bank_results[b].margin_a;
  }
  const auto decision = util::merge_topk(winners);
  const auto& winner = bank_results[decision.group];
  BankedSearchResult out;
  out.bank = decision.group;
  out.nearest = global_index(decision.group, winner.nearest);
  out.winner_current_a = decision.sensed;
  out.margin_a = decision.margin_a;
  out.nominal_distance = winner.nominal_distance;
  return out;
}

void BankedAm::check_query(std::span<const int> query) const {
  // Reject before any ordinal is consumed, so a bad query cannot shift
  // the per-bank noise-stream sequence (see search_ordinal).
  if (query.size() != banks_.front()->dims()) {
    throw std::invalid_argument("BankedAm: query.size() != dims");
  }
  const auto alphabet = banks_.front()->distance_matrix().search_count();
  for (const int v : query) {
    if (v < 0 || static_cast<std::size_t>(v) >= alphabet) {
      throw std::out_of_range("BankedAm: query value out of range");
    }
  }
}

BankedSearchResult BankedAm::search(std::span<const int> query) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search: store() first");
  }
  if (live_count() == 0) {
    throw std::logic_error("BankedAm::search: no live rows");
  }
  check_query(query);
  return search_ordinal(query, query_serial_++, parallel_banks_worthwhile(),
                        /*in_query_pool=*/false);
}

BankedSearchResult BankedAm::search_at(
    std::span<const int> query, std::uint64_t ordinal,
    std::optional<bool> parallel_banks) const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_at: store() first");
  }
  if (live_count() == 0) {
    throw std::logic_error("BankedAm::search_at: no live rows");
  }
  check_query(query);
  return search_ordinal(query, ordinal,
                        parallel_banks.value_or(parallel_banks_worthwhile()),
                        /*in_query_pool=*/false);
}

bool BankedAm::inner_fan_for_batch(std::size_t batch_size) const noexcept {
  // Small batches cannot saturate the pool across queries alone; run
  // them serially and fan each query's banks (or, single-bank, its
  // rows) instead — but only when the inner fan-out is at least as wide
  // as the query fan-out it replaces, else fanning queries wins. Either
  // schedule yields bit-identical results.
  if (batch_size == 0 || batch_size >= util::pool_width()) return false;
  const bool inner_fan_wider =
      banks_.size() > 1 ? banks_.size() >= batch_size
                        : banks_.front()->intra_query_parallel();
  return inner_fan_wider &&
         (banks_.size() == 1 || parallel_banks_worthwhile());
}

std::vector<BankedSearchResult> BankedAm::search_batch(
    std::span<const std::vector<int>> queries) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_batch: store() first");
  }
  if (live_count() == 0) {
    throw std::logic_error("BankedAm::search_batch: no live rows");
  }
  for (const auto& q : queries) check_query(q);
  const std::uint64_t base = query_serial_;
  query_serial_ += queries.size();
  return search_batch_validated(queries, base);
}

std::vector<BankedSearchResult> BankedAm::search_batch_at(
    std::span<const std::vector<int>> queries,
    std::uint64_t base_ordinal) const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_batch_at: store() first");
  }
  if (live_count() == 0) {
    throw std::logic_error("BankedAm::search_batch_at: no live rows");
  }
  for (const auto& q : queries) check_query(q);
  return search_batch_validated(queries, base_ordinal);
}

std::vector<BankedSearchResult> BankedAm::search_batch_validated(
    std::span<const std::vector<int>> queries,
    std::uint64_t base_ordinal) const {
  std::vector<BankedSearchResult> results(queries.size());
  if (queries.empty()) return results;
  if (inner_fan_for_batch(queries.size())) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      results[i] = search_ordinal(queries[i], base_ordinal + i,
                                  /*parallel_banks=*/banks_.size() > 1,
                                  /*in_query_pool=*/false);
    }
    return results;
  }
  util::parallel_for(queries.size(), [&](std::size_t i) {
    results[i] = search_ordinal(queries[i], base_ordinal + i,
                                /*parallel_banks=*/false,
                                /*in_query_pool=*/true);
  });
  return results;
}

std::vector<std::size_t> BankedAm::search_k(std::span<const int> query,
                                            std::size_t k) {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_k: store() first");
  }
  const auto hits = search_k_hits(query, k);
  std::vector<std::size_t> winners;
  winners.reserve(hits.size());
  for (const auto& hit : hits) winners.push_back(hit.nearest);
  return winners;
}

std::vector<BankedSearchResult> BankedAm::search_k_hits(
    std::span<const int> query, std::size_t k,
    std::optional<bool> parallel_banks) const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_k_hits: store() first");
  }
  if (k == 0 || k > live_count()) {
    throw std::invalid_argument("BankedAm::search_k: bad k");
  }
  check_query(query);
  // Each bank holds its sensed row currents (the post-decoder can mask
  // individual row branches); the global stage iteratively extracts the
  // minimum across the concatenated currents. Banks fire concurrently,
  // as in search().
  std::vector<std::vector<double>> per_bank(banks_.size());
  const auto run_bank = [&](std::size_t b) {
    per_bank[b] = banks_[b]->row_currents(query);
  };
  if (parallel_banks.value_or(parallel_banks_worthwhile()) &&
      banks_.size() > 1) {
    // Same bank -> participant affinity as the single-NN path.
    util::parallel_for_affine(banks_.size(), run_bank);
  } else {
    for (std::size_t b = 0; b < banks_.size(); ++b) run_bank(b);
  }
  std::vector<double> all;
  std::vector<std::uint8_t> live;
  all.reserve(total_rows_);
  live.reserve(total_rows_);
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    all.insert(all.end(), per_bank[b].begin(), per_bank[b].end());
    const auto mask = banks_[b]->live_mask();
    live.insert(live.end(), mask.begin(), mask.end());
  }
  // The concatenated post-decoder mask: removed rows are skipped, not
  // just driven to +infinity, so the decision sequence matches a fresh
  // store() of only the live rows.
  const auto decisions = global_lta_.decide_k_detailed(
      all, banks_.front()->sense_unit(), k, nullptr, live);
  std::vector<BankedSearchResult> hits;
  hits.reserve(decisions.size());
  for (const auto& decision : decisions) {
    BankedSearchResult hit;
    hit.nearest = decision.winner;
    hit.bank = bank_of(decision.winner);
    hit.winner_current_a = decision.winner_current_a;
    hit.margin_a = decision.margin_a;
    hit.nominal_distance = banks_[hit.bank]->nominal_distance(
        query, decision.winner - bank_offsets_[hit.bank]);
    hits.push_back(hit);
  }
  return hits;
}

void BankedAm::validate_query(std::span<const int> query) const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::validate_query: no rows stored");
  }
  check_query(query);
}

double BankedAm::search_delay_s() const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_delay_s: store() first");
  }
  // Banks fire concurrently; the slowest bank gates the global stage.
  double slowest = 0.0;
  for (const auto& bank : banks_) {
    slowest = std::max(slowest, bank->search_cost().total_delay_s());
  }
  return slowest + global_lta_.delay_s(banks_.size());
}

double BankedAm::search_energy_j() const {
  if (banks_.empty()) {
    throw std::logic_error("BankedAm::search_energy_j: store() first");
  }
  double total = 0.0;
  for (const auto& bank : banks_) {
    total += bank->search_cost().total_energy_j();
  }
  total += global_lta_.energy_j(banks_.size(),
                                global_lta_.delay_s(banks_.size()));
  return total;
}

}  // namespace ferex::arch
