// Banked multi-macro FeReX architecture.
//
// A single FeReX macro is bounded (the paper evaluates up to 256 rows x
// 1024 dimensions; ScL settling and LTA resolution degrade beyond that).
// Real workloads — e.g. KNN over thousands of training vectors — need the
// database *banked* across several macros:
//
//   * rows are partitioned row-major across `bank_rows`-sized macros;
//   * one search broadcasts the query to every bank in parallel;
//   * each bank's LTA produces a local winner (current + index);
//   * a global comparison stage (a second, small LTA over the per-bank
//     winner currents) picks the overall nearest neighbor.
//
// Banks share the search-line drivers, so delay is one bank search plus
// the global-LTA stage; energy is the sum over banks plus the global
// stage. k-NN is served by iterative masking at the global level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/ferex.hpp"

namespace ferex::arch {

struct BankedOptions {
  std::size_t bank_rows = 128;      ///< max stored vectors per macro
  core::FerexOptions engine{};      ///< per-macro configuration
};

/// Result of a banked search — field parity with core::SearchResult plus
/// the bank coordinate, so single-macro and banked hits interchange.
struct BankedSearchResult {
  std::size_t nearest = 0;          ///< global row index
  std::size_t bank = 0;             ///< bank holding the winner
  double winner_current_a = 0.0;    ///< winner's sensed current
  /// Sensed gap at the global comparison stage: with several banks, the
  /// distance between the two best bank winners; with one bank, that
  /// bank's own margin (the global stage over a single input is an
  /// identity). For k-NN hits, the gap to the best remaining row.
  double margin_a = 0.0;
  int nominal_distance = 0;         ///< encoding-level distance of winner
};

/// Receipt for one write-path operation (insert / remove / update).
struct BankedWrite {
  std::size_t global_row = 0;       ///< the row written (or erased)
  std::size_t bank = 0;             ///< bank holding it
  circuit::WriteCost cost{};        ///< write cost of the operation
};

/// Historical name for the insert receipt.
using BankedInsert = BankedWrite;

/// A database of vectors partitioned across FeReX macros.
class BankedAm {
 public:
  explicit BankedAm(BankedOptions options = {});

  /// Configures the distance function on every (current and future) bank.
  void configure(csp::DistanceMetric metric, int bits);

  /// Stores the database, partitioning rows across banks.
  void store(const std::vector<std::vector<int>>& database);

  /// Streaming insert. Freed (removed) slots are reused before any
  /// growth — banks are scanned in order for a free slot, and only when
  /// every slot is live does the vector append to the last bank or grow
  /// a fresh bank on demand (banks stay at most bank_rows tall).
  /// Requires configure(); the first insert establishes the
  /// dimensionality. Append searches are bit-identical to a fresh
  /// store() of the concatenated database — bank partitioning, per-bank
  /// seeds, and device variation all follow the same formulas; a reused
  /// slot keeps its own device variation, matching a fresh store() of
  /// the same physical layout. Returns where the row landed and its
  /// write cost. Throws without mutating on a wrong-length or
  /// out-of-alphabet vector.
  BankedInsert insert(std::span<const int> vector);

  /// Deletes one row by global index: routes to the owning bank's
  /// engine, which erases the slot and masks it in the post-decoder (it
  /// can never win a global LTA round; a bank whose rows are all removed
  /// stops firing entirely). The freed slot is the first insert()
  /// reuses. Returns the erase cost. Throws std::out_of_range on a bad
  /// index, std::logic_error when the row is already removed.
  BankedWrite remove(std::size_t global_row);

  /// Overwrites one row in place by global index (erase + program-and-
  /// verify on a live slot, program-only on a removed one, which becomes
  /// live again). Validates before mutating.
  BankedWrite update(std::size_t global_row, std::span<const int> vector);

  std::size_t bank_count() const noexcept { return banks_.size(); }

  bool configured() const noexcept { return configured_; }
  csp::DistanceMetric metric() const noexcept { return metric_; }
  int bits() const noexcept { return bits_; }
  const BankedOptions& options() const noexcept { return options_; }

  /// The engine backing one bank (throws std::out_of_range) — cost
  /// models, per-bank liveness, and scheduling introspection.
  const core::FerexEngine& bank(std::size_t b) const {
    if (b >= banks_.size()) throw std::out_of_range("BankedAm::bank");
    return *banks_[b];
  }

  /// Physical slots across all banks (live + removed).
  std::size_t stored_count() const noexcept { return total_rows_; }

  /// Rows that compete in searches, summed across banks.
  std::size_t live_count() const noexcept;

  /// Banks holding at least one live row (an all-removed bank stops
  /// firing until a slot is revived).
  std::size_t live_bank_count() const noexcept;

  /// Logical dimensionality of the stored vectors (0 before any row).
  std::size_t dims() const noexcept {
    return banks_.empty() ? 0 : banks_.front()->dims();
  }

  /// Global nearest-neighbor search (all banks in parallel + global LTA).
  /// When the work-size heuristic allows (multiple banks and hardware
  /// threads, circuit fidelity, total devices across banks reaching the
  /// engine's intra_query_min_devices), the banks fan across the worker
  /// pool — the hardware fires all macros at once, and a single query
  /// should too. Results are bit-identical to the serial sweep (per-bank
  /// noise is ordinal-addressed).
  /// A thin shim over the const ordinal-addressed core (search_at) that
  /// consumes one ordinal; mutates only query_serial_.
  BankedSearchResult search(std::span<const int> query);

  /// Const ordinal-addressed core of search (the engine's search_at
  /// pattern): the ordinal selects every bank's comparator-noise stream,
  /// so callers scheduling their own concurrency stay deterministic.
  /// Does not consume the ordinal counter. `parallel_banks` overrides
  /// the bank fan-out heuristic (callers already inside a worker pool
  /// pass false); nullopt applies the work-size gate. The schedule never
  /// affects results.
  BankedSearchResult search_at(std::span<const int> query,
                               std::uint64_t ordinal,
                               std::optional<bool> parallel_banks =
                                   std::nullopt) const;

  /// Batched global search: queries fan across a worker pool sized by
  /// std::thread::hardware_concurrency(), each worker driving all banks
  /// for its query. Results are bit-identical to calling search() once
  /// per query in order (per-bank comparator noise is addressed by query
  /// ordinal, not execution order). Empty batch returns an empty vector.
  /// Invalid queries — wrong length or out-of-alphabet values — are
  /// rejected up front, before any ordinal is consumed.
  std::vector<BankedSearchResult> search_batch(
      std::span<const std::vector<int>> queries);

  /// Const ordinal-addressed core of search_batch: queries take ordinals
  /// base_ordinal, base_ordinal + 1, ... Does not consume the ordinal
  /// counter; results are bit-identical to search_at per query.
  std::vector<BankedSearchResult> search_batch_at(
      std::span<const std::vector<int>> queries,
      std::uint64_t base_ordinal) const;

  /// Global k-nearest (nearest first). A shim over search_k_hits.
  std::vector<std::size_t> search_k(std::span<const int> query, std::size_t k);

  /// The k-NN serving core: top-k rows nearest first with full hit
  /// detail (sensed current, margin to the best remaining row, nominal
  /// distance). Const; unlike the two-stage single-NN path this one is
  /// deterministic — every bank exposes its raw row currents and the
  /// global post-decoder masks iteratively, with no per-bank LTA
  /// decisions and hence no comparator-noise draws — so it takes no
  /// ordinal. The winner sequence is bit-identical to search_k.
  std::vector<BankedSearchResult> search_k_hits(
      std::span<const int> query, std::size_t k,
      std::optional<bool> parallel_banks = std::nullopt) const;

  /// Validates a query exactly as every search entry point does: throws
  /// std::invalid_argument on wrong length, std::out_of_range on
  /// out-of-alphabet values, std::logic_error before any stored row.
  /// Exposed so serving layers can reject requests before consuming any
  /// query ordinal.
  void validate_query(std::span<const int> query) const;

  /// True when a batch of `batch_size` queries is better served by
  /// running queries serially and fanning each query's banks (or, single
  /// bank, its rows) — the scheduling rule search_batch applies. Never
  /// affects results.
  bool inner_fan_for_batch(std::size_t batch_size) const noexcept;

  /// Delay of one banked search: banks operate in parallel, then the
  /// global comparator resolves bank winners.
  double search_delay_s() const;

  /// Energy of one banked search: all banks fire.
  double search_energy_j() const;

  /// Complete mutable state for a durable snapshot: the banked ordinal
  /// counter plus every bank engine's state and its global offset. The
  /// byte format lives in serve/snapshot.
  struct BankedState {
    std::uint64_t query_serial = 0;
    std::vector<std::size_t> bank_offsets;
    std::vector<core::FerexEngine::EngineState> banks;
  };

  /// Exports the current state (empty banks list before any store()).
  BankedState snapshot_state() const;

  /// Installs a previously exported state. Requires configure() with
  /// the same metric/bits/options the snapshot was taken under. Banks
  /// are reconstructed with the same per-bank seed formula store() uses,
  /// then each engine restores its exact state — searches, and every
  /// subsequent insert's variation draw, are bit-identical to the
  /// uninterrupted instance.
  void restore_state(BankedState state);

  /// Tombstone compaction: re-packs the live rows densely via store(),
  /// which rebuilds every bank as a fresh engine — bit-identical to
  /// configure()+store() of the survivors on a fresh BankedAm. The
  /// banked ordinal counter is kept. Returns the slots reclaimed.
  std::size_t compact();

 private:
  std::size_t global_index(std::size_t bank, std::size_t local) const;
  /// Bank holding a global row index.
  std::size_t bank_of(std::size_t global_row) const;
  /// A configured, empty engine for the bank whose first global row is
  /// `start`, with the per-bank seed decorrelation formula store() and
  /// insert() share (bit-identity of the two population paths depends on
  /// both using exactly this). `bank_count` is the count after adding it.
  std::unique_ptr<core::FerexEngine> make_bank(std::size_t start,
                                               std::size_t bank_count) const;
  void check_query(std::span<const int> query) const;
  /// Work-size gate for fanning banks across the pool: multiple banks
  /// holding live rows, multiple hardware threads, circuit fidelity, and
  /// total devices across banks at least the engine's
  /// intra_query_min_devices — the same heuristic the engine applies to
  /// its rows, so tiny banked configs never pay thread-spawn costs that
  /// dwarf the solve work.
  bool parallel_banks_worthwhile() const noexcept;
  /// Re-derives every bank engine's intra-query parallelism setting from
  /// the live bank count: with more than one live bank this layer fans
  /// banks (row fan-out would nest pools, so it is disabled); back down
  /// at one live bank the engines regain the configured row heuristic.
  /// Scheduling only — results are schedule-invariant.
  void reconcile_intra_query();
  /// `in_query_pool` marks calls made from inside a parallel_for over
  /// queries: bank row loops are then forced serial so pools never nest.
  /// Outside a pool the per-bank engines keep their own row heuristic.
  BankedSearchResult search_ordinal(std::span<const int> query,
                                    std::uint64_t ordinal,
                                    bool parallel_banks,
                                    bool in_query_pool) const;
  /// Post-validation batch core shared by search_batch / search_batch_at.
  std::vector<BankedSearchResult> search_batch_validated(
      std::span<const std::vector<int>> queries,
      std::uint64_t base_ordinal) const;

  BankedOptions options_;
  std::uint64_t query_serial_ = 0;
  csp::DistanceMetric metric_ = csp::DistanceMetric::kHamming;
  int bits_ = 0;
  bool configured_ = false;
  std::vector<std::unique_ptr<core::FerexEngine>> banks_;
  std::vector<std::size_t> bank_offsets_;  ///< global row of bank's row 0
  std::size_t total_rows_ = 0;
  circuit::LtaCircuit global_lta_;
};

}  // namespace ferex::arch
