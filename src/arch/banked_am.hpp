// Banked multi-macro FeReX architecture.
//
// A single FeReX macro is bounded (the paper evaluates up to 256 rows x
// 1024 dimensions; ScL settling and LTA resolution degrade beyond that).
// Real workloads — e.g. KNN over thousands of training vectors — need the
// database *banked* across several macros:
//
//   * rows are partitioned row-major across `bank_rows`-sized macros;
//   * one search broadcasts the query to every bank in parallel;
//   * each bank's LTA produces a local winner (current + index);
//   * a global comparison stage (a second, small LTA over the per-bank
//     winner currents) picks the overall nearest neighbor.
//
// Banks share the search-line drivers, so delay is one bank search plus
// the global-LTA stage; energy is the sum over banks plus the global
// stage. k-NN is served by iterative masking at the global level.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/ferex.hpp"

namespace ferex::arch {

struct BankedOptions {
  std::size_t bank_rows = 128;      ///< max stored vectors per macro
  core::FerexOptions engine{};      ///< per-macro configuration
};

/// Result of a banked search.
struct BankedSearchResult {
  std::size_t nearest = 0;          ///< global row index
  std::size_t bank = 0;             ///< bank holding the winner
  double winner_current_a = 0.0;    ///< winner's sensed current
};

/// A database of vectors partitioned across FeReX macros.
class BankedAm {
 public:
  explicit BankedAm(BankedOptions options = {});

  /// Configures the distance function on every (current and future) bank.
  void configure(csp::DistanceMetric metric, int bits);

  /// Stores the database, partitioning rows across banks.
  void store(const std::vector<std::vector<int>>& database);

  std::size_t bank_count() const noexcept { return banks_.size(); }
  std::size_t stored_count() const noexcept { return total_rows_; }

  /// Global nearest-neighbor search (all banks in parallel + global LTA).
  /// When the work-size heuristic allows (multiple banks and hardware
  /// threads, circuit fidelity, total devices across banks reaching the
  /// engine's intra_query_min_devices), the banks fan across the worker
  /// pool — the hardware fires all macros at once, and a single query
  /// should too. Results are bit-identical to the serial sweep (per-bank
  /// noise is ordinal-addressed).
  BankedSearchResult search(std::span<const int> query);

  /// Batched global search: queries fan across a worker pool sized by
  /// std::thread::hardware_concurrency(), each worker driving all banks
  /// for its query. Results are bit-identical to calling search() once
  /// per query in order (per-bank comparator noise is addressed by query
  /// ordinal, not execution order). Empty batch returns an empty vector.
  /// Invalid queries — wrong length or out-of-alphabet values — are
  /// rejected up front, before any ordinal is consumed.
  std::vector<BankedSearchResult> search_batch(
      std::span<const std::vector<int>> queries);

  /// Global k-nearest (nearest first).
  std::vector<std::size_t> search_k(std::span<const int> query, std::size_t k);

  /// Delay of one banked search: banks operate in parallel, then the
  /// global comparator resolves bank winners.
  double search_delay_s() const;

  /// Energy of one banked search: all banks fire.
  double search_energy_j() const;

 private:
  std::size_t global_index(std::size_t bank, std::size_t local) const;
  void check_query(std::span<const int> query) const;
  /// Work-size gate for fanning banks across the pool: multiple banks,
  /// multiple hardware threads, circuit fidelity, and total devices
  /// across banks at least the engine's intra_query_min_devices — the
  /// same heuristic the engine applies to its rows, so tiny banked
  /// configs never pay thread-spawn costs that dwarf the solve work.
  bool parallel_banks_worthwhile() const noexcept;
  /// `in_query_pool` marks calls made from inside a parallel_for over
  /// queries: bank row loops are then forced serial so pools never nest.
  /// Outside a pool the per-bank engines keep their own row heuristic.
  BankedSearchResult search_ordinal(std::span<const int> query,
                                    std::uint64_t ordinal,
                                    bool parallel_banks,
                                    bool in_query_pool) const;

  BankedOptions options_;
  std::uint64_t query_serial_ = 0;
  csp::DistanceMetric metric_ = csp::DistanceMetric::kHamming;
  int bits_ = 0;
  bool configured_ = false;
  std::vector<std::unique_ptr<core::FerexEngine>> banks_;
  std::vector<std::size_t> bank_offsets_;  ///< global row of bank's row 0
  std::size_t total_rows_ = 0;
  circuit::LtaCircuit global_lta_;
};

}  // namespace ferex::arch
