#include "ml/hdc.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "ml/knn.hpp"
#include "util/rng.hpp"

namespace ferex::ml {

HdcModel::HdcModel(std::size_t feature_count, std::size_t class_count,
                   HdcOptions options)
    : feature_count_(feature_count),
      class_count_(class_count),
      options_(options) {
  if (feature_count == 0 || class_count == 0) {
    throw std::invalid_argument("HdcModel: empty shape");
  }
  if (options_.hypervector_dim == 0) {
    throw std::invalid_argument("HdcModel: hypervector_dim == 0");
  }
  // Random bipolar projection, scaled so encoded components are O(1).
  util::Rng rng(options_.seed);
  projection_ = util::Matrix<double>(options_.hypervector_dim, feature_count);
  const double scale = 1.0 / std::sqrt(static_cast<double>(feature_count));
  for (double& w : projection_.flat()) {
    w = rng.bernoulli(0.5) ? scale : -scale;
  }
}

std::vector<double> HdcModel::encode(std::span<const double> features) const {
  if (features.size() != feature_count_) {
    throw std::invalid_argument("HdcModel::encode: feature count mismatch");
  }
  std::vector<double> out(options_.hypervector_dim, 0.0);
  for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
    const auto row = projection_.row(d);
    double acc = 0.0;
    for (std::size_t f = 0; f < feature_count_; ++f) {
      acc += row[f] * features[f];
    }
    out[d] = acc;
  }
  return out;
}

void HdcModel::train(const util::Matrix<double>& train_x,
                     std::span<const int> train_y) {
  if (train_x.rows() != train_y.size() || train_x.rows() == 0) {
    throw std::invalid_argument("HdcModel::train: bad training set");
  }
  // Encode once; reuse across the single pass and every refinement epoch.
  util::Matrix<double> encoded(train_x.rows(), options_.hypervector_dim);
  for (std::size_t s = 0; s < train_x.rows(); ++s) {
    const auto h = encode(train_x.row(s));
    for (std::size_t d = 0; d < h.size(); ++d) encoded.at(s, d) = h[d];
  }

  // Single-pass training: aggregate the encoded vectors of each class.
  accumulators_ = util::Matrix<double>(class_count_, options_.hypervector_dim, 0.0);
  for (std::size_t s = 0; s < encoded.rows(); ++s) {
    const auto c = static_cast<std::size_t>(train_y[s]);
    if (c >= class_count_) {
      throw std::out_of_range("HdcModel::train: label out of range");
    }
    for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
      accumulators_.at(c, d) += encoded.at(s, d);
    }
  }
  // Normalize by class counts so prototypes share one scale.
  std::vector<double> counts(class_count_, 0.0);
  for (int label : train_y) counts[static_cast<std::size_t>(label)] += 1.0;
  for (std::size_t c = 0; c < class_count_; ++c) {
    if (counts[c] == 0.0) continue;
    for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
      accumulators_.at(c, d) /= counts[c];
    }
  }

  quantizer_ = Quantizer::fit(encoded, options_.bits);
  quantize_prototypes();
  refine(encoded, train_y);
  trained_ = true;
}

void HdcModel::refine(const util::Matrix<double>& encoded,
                      std::span<const int> train_y) {
  // Iterative training (perceptron-style): on a miss, pull the true class
  // prototype toward the sample and push the predicted one away.
  for (std::size_t epoch = 0; epoch < options_.training_epochs; ++epoch) {
    std::size_t misses = 0;
    for (std::size_t s = 0; s < encoded.rows(); ++s) {
      // Predict against the continuous accumulators (L2) during training.
      std::size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < class_count_; ++c) {
        double dist = 0.0;
        for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
          const double diff = accumulators_.at(c, d) - encoded.at(s, d);
          dist += diff * diff;
        }
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      const auto truth = static_cast<std::size_t>(train_y[s]);
      if (best == truth) continue;
      ++misses;
      const double lr = options_.learning_rate /
                        static_cast<double>(encoded.rows());
      for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
        const double h = encoded.at(s, d);
        accumulators_.at(truth, d) += lr * (h - accumulators_.at(truth, d));
        accumulators_.at(best, d) -= lr * (h - accumulators_.at(best, d));
      }
    }
    if (misses == 0) break;
  }
  quantize_prototypes();
}

void HdcModel::quantize_prototypes() {
  prototypes_ = util::Matrix<int>(class_count_, options_.hypervector_dim, 0);
  for (std::size_t c = 0; c < class_count_; ++c) {
    for (std::size_t d = 0; d < options_.hypervector_dim; ++d) {
      prototypes_.at(c, d) = quantizer_->quantize(accumulators_.at(c, d));
    }
  }
}

const util::Matrix<int>& HdcModel::prototypes() const {
  if (!trained_) throw std::logic_error("HdcModel: train() first");
  return prototypes_;
}

std::vector<int> HdcModel::encode_query(std::span<const double> features) const {
  if (!trained_) throw std::logic_error("HdcModel: train() first");
  return quantizer_->quantize(encode(features));
}

int HdcModel::predict(csp::DistanceMetric metric,
                      std::span<const double> features) const {
  const auto query = encode_query(features);
  long long best_d = std::numeric_limits<long long>::max();
  int best_c = 0;
  for (std::size_t c = 0; c < class_count_; ++c) {
    const long long d = vector_distance(metric, query, prototypes_.row(c));
    if (d < best_d) {
      best_d = d;
      best_c = static_cast<int>(c);
    }
  }
  return best_c;
}

double HdcModel::evaluate(csp::DistanceMetric metric,
                          const util::Matrix<double>& test_x,
                          std::span<const int> test_y) const {
  if (test_x.rows() != test_y.size()) {
    throw std::invalid_argument("HdcModel::evaluate: shape mismatch");
  }
  std::size_t hits = 0;
  for (std::size_t s = 0; s < test_x.rows(); ++s) {
    if (predict(metric, test_x.row(s)) == test_y[s]) ++hits;
  }
  return test_x.rows() > 0
             ? static_cast<double>(hits) / static_cast<double>(test_x.rows())
             : 0.0;
}

}  // namespace ferex::ml
