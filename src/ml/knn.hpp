// Exact k-nearest-neighbor search and classification — the software
// baseline every FeReX result is checked against, and the workload of the
// paper's Monte-Carlo robustness study (Fig. 7).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "csp/distance_matrix.hpp"
#include "util/matrix.hpp"

namespace ferex::ml {

/// Total distance between two equal-length quantized vectors.
long long vector_distance(csp::DistanceMetric metric, std::span<const int> a,
                          std::span<const int> b);

/// Indices of the k nearest database rows to the query, nearest first.
/// Ties broken by lower row index (deterministic).
std::vector<std::size_t> knn_indices(csp::DistanceMetric metric,
                                     const util::Matrix<int>& database,
                                     std::span<const int> query,
                                     std::size_t k);

/// Brute-force exact KNN classifier over quantized vectors.
class KnnClassifier {
 public:
  /// @param database  [sample][feature] quantized training vectors
  /// @param labels    per-row class labels
  KnnClassifier(util::Matrix<int> database, std::vector<int> labels);

  std::size_t size() const noexcept { return labels_.size(); }

  /// Majority vote over the k nearest rows (ties: smallest label).
  int predict(csp::DistanceMetric metric, std::span<const int> query,
              std::size_t k) const;

  /// Classification accuracy over a test set.
  double evaluate(csp::DistanceMetric metric, const util::Matrix<int>& test_x,
                  std::span<const int> test_y, std::size_t k) const;

  const util::Matrix<int>& database() const noexcept { return database_; }
  const std::vector<int>& labels() const noexcept { return labels_; }

 private:
  util::Matrix<int> database_;
  std::vector<int> labels_;
};

}  // namespace ferex::ml
