// Hyperdimensional computing (HDC / VSA) pipeline — Sec. IV-B.
//
// The paper's three-step flow:
//   1. random projection of low-dimensional features to a hyperdimensional
//      space (holographic representation);
//   2. single-pass training (aggregate encoded vectors per class) plus
//      optional iterative refinement for higher accuracy;
//   3. inference: the class prototype nearest to the encoded query under
//      the configured distance metric wins — exactly the associative
//      search FeReX executes in memory.
//
// Prototypes and queries are quantized to b-bit integers so they can be
// programmed into / searched against the multi-bit AM.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "csp/distance_matrix.hpp"
#include "ml/quantize.hpp"
#include "util/matrix.hpp"

namespace ferex::ml {

struct HdcOptions {
  std::size_t hypervector_dim = 1024;  ///< D, the projected dimensionality
  int bits = 2;                        ///< quantization of prototypes/queries
  std::size_t training_epochs = 3;     ///< iterative refinement passes
  double learning_rate = 1.0;          ///< prototype update step
  std::uint64_t seed = 0xd1c0;         ///< projection matrix seed
};

class HdcModel {
 public:
  /// @param feature_count  input dimensionality n
  /// @param class_count    number of classes K
  HdcModel(std::size_t feature_count, std::size_t class_count,
           HdcOptions options);

  std::size_t feature_count() const noexcept { return feature_count_; }
  std::size_t class_count() const noexcept { return class_count_; }
  const HdcOptions& options() const noexcept { return options_; }

  /// Projects one sample to the (continuous) hyperdimensional space.
  std::vector<double> encode(std::span<const double> features) const;

  /// Single-pass aggregation + iterative refinement; fits the quantizer
  /// on the encoded training distribution.
  void train(const util::Matrix<double>& train_x, std::span<const int> train_y);

  /// Quantized class prototypes [class][dim] — what gets programmed into
  /// the FeReX array. Requires train().
  const util::Matrix<int>& prototypes() const;

  /// Encodes + quantizes a query for the AM.
  std::vector<int> encode_query(std::span<const double> features) const;

  /// Software inference: nearest prototype under the metric.
  int predict(csp::DistanceMetric metric, std::span<const double> features) const;

  /// Accuracy of software inference over a test set.
  double evaluate(csp::DistanceMetric metric, const util::Matrix<double>& test_x,
                  std::span<const int> test_y) const;

 private:
  void refine(const util::Matrix<double>& encoded, std::span<const int> train_y);
  void quantize_prototypes();

  std::size_t feature_count_;
  std::size_t class_count_;
  HdcOptions options_;
  util::Matrix<double> projection_;       ///< [dim][feature] random +-1
  util::Matrix<double> accumulators_;     ///< continuous class prototypes
  util::Matrix<int> prototypes_;          ///< quantized class prototypes
  std::optional<Quantizer> quantizer_;    ///< fitted on encoded train data
  bool trained_ = false;
};

}  // namespace ferex::ml
