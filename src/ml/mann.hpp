// Memory-augmented one-shot / few-shot learning (MANN) on the AM.
//
// The original application of FeFET associative memories (Ni et al.,
// Nature Electronics'19; SAPIENS TED'21): an episodic memory stores the
// few labelled support examples of novel classes, and a query is
// classified by nearest-neighbor search against that memory — exactly the
// operation FeReX accelerates, with the distance function now a runtime
// choice per episode.
//
// Episodes follow the standard N-way / k-shot protocol with freshly drawn
// synthetic classes per episode (the library has no Omniglot, so class
// prototypes are sampled Gaussians — see data/datasets.hpp for the
// substitution rationale).
#pragma once

#include <cstdint>

#include "core/ferex.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace ferex::ml {

struct EpisodeSpec {
  std::size_t ways = 5;               ///< classes per episode (N)
  std::size_t shots = 1;              ///< support examples per class (k)
  std::size_t queries_per_class = 5;
  std::size_t feature_count = 64;
  double class_separation = 1.2;      ///< prototype distance / noise sigma
};

/// One episodic task: support set (to store) + query set (to classify).
struct Episode {
  util::Matrix<double> support_x;
  std::vector<int> support_y;
  util::Matrix<double> query_x;
  std::vector<int> query_y;
};

/// Draws a fresh episode: novel class prototypes, then support/query
/// samples around them.
Episode make_episode(const EpisodeSpec& spec, util::Rng& rng);

struct FewShotResult {
  double accuracy = 0.0;       ///< over all episodes and queries
  std::size_t episodes = 0;
  std::size_t queries = 0;
};

/// Runs `episodes` episodic evaluations through a FeReX engine: each
/// episode quantizes its support set, programs it into the AM, and
/// classifies queries by in-memory nearest-neighbor vote over the shots.
/// The engine must already be configured (any metric / bit width).
FewShotResult evaluate_few_shot(core::FerexEngine& engine,
                                const EpisodeSpec& spec,
                                std::size_t episodes, std::uint64_t seed);

}  // namespace ferex::ml
