// Multi-bit feature quantization.
//
// The AM stores b-bit integers per cell, so continuous features (raw or
// hyperdimensional) must be quantized to [0, 2^b). We use per-model
// equal-probability (quantile) thresholds fitted on training data, which
// keeps all levels populated regardless of the feature distribution.
#pragma once

#include <span>
#include <vector>

#include "util/matrix.hpp"

namespace ferex::ml {

class Quantizer {
 public:
  /// Fits global thresholds on all values of the training matrix.
  /// bits in [1, 8]; levels = 2^bits.
  static Quantizer fit(const util::Matrix<double>& train, int bits);

  /// Fits on an explicit sample of values.
  static Quantizer fit(std::span<const double> values, int bits);

  int bits() const noexcept { return bits_; }
  int levels() const noexcept { return 1 << bits_; }
  const std::vector<double>& thresholds() const noexcept { return thresholds_; }

  /// Quantizes one value to its level in [0, levels).
  int quantize(double v) const noexcept;

  /// Quantizes a whole vector.
  std::vector<int> quantize(std::span<const double> v) const;

  /// Quantizes every row of a matrix.
  util::Matrix<int> quantize(const util::Matrix<double>& m) const;

 private:
  Quantizer(std::vector<double> thresholds, int bits);

  std::vector<double> thresholds_;  ///< ascending; size = levels - 1
  int bits_ = 1;
};

}  // namespace ferex::ml
