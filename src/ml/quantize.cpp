#include "ml/quantize.hpp"

#include <algorithm>
#include <stdexcept>

namespace ferex::ml {

Quantizer::Quantizer(std::vector<double> thresholds, int bits)
    : thresholds_(std::move(thresholds)), bits_(bits) {}

Quantizer Quantizer::fit(const util::Matrix<double>& train, int bits) {
  return fit(train.flat(), bits);
}

Quantizer Quantizer::fit(std::span<const double> values, int bits) {
  if (bits < 1 || bits > 8) {
    throw std::invalid_argument("Quantizer::fit: bits must be in [1, 8]");
  }
  if (values.empty()) {
    throw std::invalid_argument("Quantizer::fit: no values");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const int levels = 1 << bits;
  std::vector<double> thresholds;
  thresholds.reserve(static_cast<std::size_t>(levels) - 1);
  for (int level = 1; level < levels; ++level) {
    const double q = static_cast<double>(level) / levels;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    thresholds.push_back(sorted[idx]);
  }
  return Quantizer(std::move(thresholds), bits);
}

int Quantizer::quantize(double v) const noexcept {
  // First threshold >= v gives the level (thresholds ascending).
  const auto it = std::lower_bound(thresholds_.begin(), thresholds_.end(), v);
  return static_cast<int>(std::distance(thresholds_.begin(), it));
}

std::vector<int> Quantizer::quantize(std::span<const double> v) const {
  std::vector<int> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = quantize(v[i]);
  return out;
}

util::Matrix<int> Quantizer::quantize(const util::Matrix<double>& m) const {
  util::Matrix<int> out(m.rows(), m.cols(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out.at(r, c) = quantize(m.at(r, c));
    }
  }
  return out;
}

}  // namespace ferex::ml
