#include "ml/knn.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace ferex::ml {

long long vector_distance(csp::DistanceMetric metric, std::span<const int> a,
                          std::span<const int> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("vector_distance: length mismatch");
  }
  long long total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += csp::reference_distance(metric, a[i], b[i]);
  }
  return total;
}

std::vector<std::size_t> knn_indices(csp::DistanceMetric metric,
                                     const util::Matrix<int>& database,
                                     std::span<const int> query,
                                     std::size_t k) {
  if (k == 0 || k > database.rows()) {
    throw std::invalid_argument("knn_indices: bad k");
  }
  std::vector<std::pair<long long, std::size_t>> scored(database.rows());
  for (std::size_t r = 0; r < database.rows(); ++r) {
    scored[r] = {vector_distance(metric, query, database.row(r)), r};
  }
  std::partial_sort(scored.begin(), scored.begin() + static_cast<long>(k),
                    scored.end());
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = scored[i].second;
  return out;
}

KnnClassifier::KnnClassifier(util::Matrix<int> database,
                             std::vector<int> labels)
    : database_(std::move(database)), labels_(std::move(labels)) {
  if (database_.rows() != labels_.size()) {
    throw std::invalid_argument("KnnClassifier: rows != labels");
  }
  if (database_.rows() == 0) {
    throw std::invalid_argument("KnnClassifier: empty database");
  }
}

int KnnClassifier::predict(csp::DistanceMetric metric,
                           std::span<const int> query, std::size_t k) const {
  const auto neighbors = knn_indices(metric, database_, query, k);
  std::map<int, std::size_t> votes;
  for (std::size_t idx : neighbors) ++votes[labels_[idx]];
  int best_label = labels_[neighbors.front()];
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best_votes = count;
      best_label = label;
    }
  }
  return best_label;
}

double KnnClassifier::evaluate(csp::DistanceMetric metric,
                               const util::Matrix<int>& test_x,
                               std::span<const int> test_y,
                               std::size_t k) const {
  if (test_x.rows() != test_y.size()) {
    throw std::invalid_argument("KnnClassifier::evaluate: shape mismatch");
  }
  std::size_t hits = 0;
  for (std::size_t s = 0; s < test_x.rows(); ++s) {
    if (predict(metric, test_x.row(s), k) == test_y[s]) ++hits;
  }
  return test_x.rows() > 0
             ? static_cast<double>(hits) / static_cast<double>(test_x.rows())
             : 0.0;
}

}  // namespace ferex::ml
