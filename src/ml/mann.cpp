#include "ml/mann.hpp"

#include <map>
#include <stdexcept>

#include "ml/quantize.hpp"

namespace ferex::ml {

Episode make_episode(const EpisodeSpec& spec, util::Rng& rng) {
  if (spec.ways == 0 || spec.shots == 0 || spec.feature_count == 0) {
    throw std::invalid_argument("make_episode: degenerate spec");
  }
  // Fresh class prototypes for this episode ("novel classes").
  util::Matrix<double> prototypes(spec.ways, spec.feature_count);
  for (double& v : prototypes.flat()) {
    v = rng.gaussian(0.0, spec.class_separation);
  }
  const auto sample_around = [&](std::size_t c, std::span<double> out) {
    for (std::size_t f = 0; f < spec.feature_count; ++f) {
      out[f] = prototypes.at(c, f) + rng.gaussian();
    }
  };

  Episode ep;
  const std::size_t support_n = spec.ways * spec.shots;
  const std::size_t query_n = spec.ways * spec.queries_per_class;
  ep.support_x = util::Matrix<double>(support_n, spec.feature_count);
  ep.support_y.resize(support_n);
  ep.query_x = util::Matrix<double>(query_n, spec.feature_count);
  ep.query_y.resize(query_n);
  std::size_t s = 0;
  for (std::size_t c = 0; c < spec.ways; ++c) {
    for (std::size_t shot = 0; shot < spec.shots; ++shot, ++s) {
      sample_around(c, ep.support_x.row(s));
      ep.support_y[s] = static_cast<int>(c);
    }
  }
  std::size_t q = 0;
  for (std::size_t c = 0; c < spec.ways; ++c) {
    for (std::size_t i = 0; i < spec.queries_per_class; ++i, ++q) {
      sample_around(c, ep.query_x.row(q));
      ep.query_y[q] = static_cast<int>(c);
    }
  }
  return ep;
}

FewShotResult evaluate_few_shot(core::FerexEngine& engine,
                                const EpisodeSpec& spec,
                                std::size_t episodes, std::uint64_t seed) {
  if (!engine.configured()) {
    throw std::logic_error("evaluate_few_shot: engine not configured");
  }
  util::Rng rng(seed);
  FewShotResult result;
  result.episodes = episodes;
  std::size_t hits = 0;
  for (std::size_t e = 0; e < episodes; ++e) {
    const auto ep = make_episode(spec, rng);
    const auto quantizer = Quantizer::fit(ep.support_x, engine.bits());
    const auto support_q = quantizer.quantize(ep.support_x);
    std::vector<std::vector<int>> database;
    for (std::size_t r = 0; r < support_q.rows(); ++r) {
      const auto row = support_q.row(r);
      database.emplace_back(row.begin(), row.end());
    }
    engine.store(database);  // episodic memory replace

    for (std::size_t q = 0; q < ep.query_x.rows(); ++q) {
      const auto query = quantizer.quantize(ep.query_x.row(q));
      int predicted;
      if (spec.shots == 1) {
        predicted = ep.support_y[engine.search(query).nearest];
      } else {
        // Vote over the k = shots nearest supports.
        const auto neighbors = engine.search_k(query, spec.shots);
        std::map<int, std::size_t> votes;
        for (auto idx : neighbors) ++votes[ep.support_y[idx]];
        predicted = ep.support_y[neighbors.front()];
        std::size_t best = 0;
        for (const auto& [label, count] : votes) {
          if (count > best) {
            best = count;
            predicted = label;
          }
        }
      }
      ++result.queries;
      if (predicted == ep.query_y[q]) ++hits;
    }
  }
  result.accuracy = result.queries > 0
                        ? static_cast<double>(hits) /
                              static_cast<double>(result.queries)
                        : 0.0;
  return result;
}

}  // namespace ferex::ml
