#include "circuit/energy_model.hpp"

namespace ferex::circuit {

EnergyDelayModel::EnergyDelayModel(device::CellParams cell,
                                   ParasiticParams parasitics,
                                   OpAmpParams opamp, LtaParams lta,
                                   PeripheryParams periphery)
    : cell_(cell),
      parasitics_(parasitics),
      opamp_(opamp),
      lta_(lta),
      periphery_(periphery) {}

SearchCost EnergyDelayModel::search_op(const SearchOpSpec& spec) const {
  SearchCost cost;
  const std::size_t device_cols = spec.dims * spec.fefets_per_cell;
  const Parasitics para(spec.rows, device_cols, parasitics_);
  const InterfaceCircuit opamp(opamp_);
  const LtaCircuit lta(lta_);

  // --- Delay ---
  cost.scl_settle_s = opamp.settle_time_s(para.scl_cap_f());
  cost.lta_delay_s = lta.delay_s(spec.rows);
  const double t_total = cost.scl_settle_s + cost.lta_delay_s;

  // --- Array conduction energy: I * V * t over all conducting devices ---
  const double unit_i = cell_.vds_unit_v / cell_.resistance_ohm;
  const double devices =
      static_cast<double>(spec.rows) * static_cast<double>(device_cols);
  const double on_devices = devices * spec.avg_on_fraction;
  const double avg_vds = cell_.vds_unit_v * spec.avg_vds_multiple;
  const double avg_i = unit_i * spec.avg_vds_multiple;
  cost.array_energy_j = on_devices * avg_i * avg_vds * t_total;

  // --- Driver energy: charging every DL and SL once per search (CV^2) ---
  const double v_drive = cell_.vds_unit_v * spec.avg_vds_multiple;
  const double v_gate = 1.0;  // representative SL swing
  cost.driver_energy_j =
      static_cast<double>(device_cols) *
      (para.dl_cap_f() * v_drive * v_drive + para.dl_cap_f() * v_gate * v_gate);

  // --- Row op-amps: static power over the whole search ---
  cost.opamp_energy_j =
      static_cast<double>(spec.rows) * opamp.energy_j(t_total);

  // --- LTA: core power amortizes across rows ---
  cost.lta_energy_j = lta.energy_j(spec.rows, cost.lta_delay_s);

  // --- Fixed periphery (decoder, switch matrix, DACs, Vs/LTA supply):
  //     row-count independent, so its per-bit share shrinks as the array
  //     grows — the dominant Fig. 6(a) effect. ---
  cost.periphery_energy_j = periphery_.static_power_w * t_total;

  return cost;
}

double EnergyDelayModel::throughput_qps(const SearchOpSpec& spec) const {
  const double delay = search_op(spec).total_delay_s();
  return delay > 0.0 ? 1.0 / delay : 0.0;
}

}  // namespace ferex::circuit
