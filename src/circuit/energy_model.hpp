// Search energy & delay model (Fig. 6).
//
// One FeReX search op consists of: drain/search-line drivers charging the
// array, cell currents flowing for the sense duration, the per-row op-amp
// clamps holding the ScLs, and the LTA comparison. The paper reports:
//   * energy/bit DECREASES with row count (the LTA and driver overheads
//     amortize over more stored bits — "LTA power grows insignificantly
//     as the number of rows increases");
//   * total delay INCREASES gradually with array size, ~60 % of it from
//     ScL settling limited by the op-amp slew rate.
// This model reproduces those scaling laws from circuit quantities; the
// absolute constants are calibrated to the magnitudes typical of 45 nm
// CiM arrays rather than fitted to the paper's (unlabeled) axes.
#pragma once

#include <cstddef>

#include "circuit/interface.hpp"
#include "circuit/lta.hpp"
#include "circuit/parasitics.hpp"
#include "device/one_fefet_one_r.hpp"

namespace ferex::circuit {

/// Geometry + operating point of one search op.
struct SearchOpSpec {
  std::size_t rows = 64;          ///< stored vectors
  std::size_t dims = 128;         ///< elements (cells) per vector
  std::size_t fefets_per_cell = 3;
  std::size_t bits_per_cell = 2;  ///< data bits encoded per cell
  double avg_on_fraction = 0.5;   ///< fraction of devices conducting
  double avg_vds_multiple = 1.5;  ///< mean drain multiple of ON devices
};

/// Fixed periphery of one FeReX macro: input decoder, column switch
/// matrix, drain-voltage selector DACs and the Vs/LTA supply block
/// (Fig. 2a). Its static power is independent of the row count — the
/// component whose amortization makes energy/bit fall as rows grow
/// (Fig. 6a).
struct PeripheryParams {
  double static_power_w = 500e-6;
};

/// Per-phase breakdown of one search operation.
struct SearchCost {
  double array_energy_j = 0.0;     ///< cell conduction energy
  double driver_energy_j = 0.0;    ///< DL/SL charging (CV^2)
  double opamp_energy_j = 0.0;     ///< row interface clamps
  double lta_energy_j = 0.0;       ///< loser-take-all comparison
  double periphery_energy_j = 0.0; ///< decoder/DAC/supply fixed block
  double scl_settle_s = 0.0;       ///< op-amp-limited ScL settling
  double lta_delay_s = 0.0;        ///< LTA decision time

  double total_energy_j() const noexcept {
    return array_energy_j + driver_energy_j + opamp_energy_j + lta_energy_j +
           periphery_energy_j;
  }
  double total_delay_s() const noexcept { return scl_settle_s + lta_delay_s; }

  /// Average search energy per stored bit — the Fig. 6(a) metric.
  double energy_per_bit_j(const SearchOpSpec& spec) const noexcept {
    const double bits = static_cast<double>(spec.rows) *
                        static_cast<double>(spec.dims) *
                        static_cast<double>(spec.bits_per_cell);
    return bits > 0.0 ? total_energy_j() / bits : 0.0;
  }
};

/// Analytical model combining the periphery sub-models.
class EnergyDelayModel {
 public:
  EnergyDelayModel(device::CellParams cell = {}, ParasiticParams parasitics = {},
                   OpAmpParams opamp = {}, LtaParams lta = {},
                   PeripheryParams periphery = {});

  /// Cost of one search op over the given geometry.
  SearchCost search_op(const SearchOpSpec& spec) const;

  /// Search throughput [queries/s] implied by the delay.
  double throughput_qps(const SearchOpSpec& spec) const;

 private:
  device::CellParams cell_;
  ParasiticParams parasitics_;
  OpAmpParams opamp_;
  LtaParams lta_;
  PeripheryParams periphery_;
};

}  // namespace ferex::circuit
