#include "circuit/parasitics.hpp"

namespace ferex::circuit {

Parasitics::Parasitics(std::size_t rows, std::size_t device_columns,
                       ParasiticParams params)
    : rows_(rows), device_columns_(device_columns), params_(params) {}

double Parasitics::scl_cap_f() const noexcept {
  const double length_um =
      static_cast<double>(device_columns_) * params_.cell_pitch_um;
  return length_um * params_.wire_cap_f_per_um +
         static_cast<double>(device_columns_) * params_.junction_cap_f;
}

double Parasitics::scl_res_ohm() const noexcept {
  const double length_um =
      static_cast<double>(device_columns_) * params_.cell_pitch_um;
  return length_um * params_.wire_res_ohm_per_um;
}

double Parasitics::dl_cap_f() const noexcept {
  const double length_um = static_cast<double>(rows_) * params_.cell_pitch_um;
  return length_um * params_.wire_cap_f_per_um +
         static_cast<double>(rows_) * params_.junction_cap_f;
}

}  // namespace ferex::circuit
