#include "circuit/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/preisach.hpp"

namespace ferex::circuit {

CrossbarArray::CrossbarArray(std::size_t rows, std::size_t dims,
                             const encode::CellEncoding& encoding,
                             const device::VoltageLadder& ladder,
                             CrossbarConfig config, util::Rng& rng)
    : rows_(rows),
      dims_(dims),
      fefets_per_cell_(encoding.fefets_per_cell()),
      encoding_(encoding),
      ladder_(ladder),
      config_(config) {
  if (rows == 0 || dims == 0) {
    throw std::invalid_argument("CrossbarArray: empty geometry");
  }
  if (ladder.levels() < encoding.ladder_levels()) {
    throw std::invalid_argument(
        "CrossbarArray: ladder has fewer levels than the encoding needs");
  }
  if (ladder.vth(ladder.levels() - 1) > config_.fet.vth_max_v) {
    throw std::invalid_argument(
        "CrossbarArray: ladder's highest Vth exceeds the device's "
        "programmable window — use a smaller step");
  }
  const std::size_t devices = rows * dims * fefets_per_cell_;
  const device::VariationModel variation(config_.variation);
  vth_offsets_.resize(devices);
  resistances_.resize(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    vth_offsets_[d] = variation.sample_vth_offset(rng);
    resistances_[d] =
        config_.cell.resistance_ohm * variation.sample_r_multiplier(rng);
  }
  // Erased state: highest threshold (nothing conducts until programmed).
  vth_.assign(devices, config_.fet.vth_max_v);
  stored_values_.assign(rows * dims, 0);
}

void CrossbarArray::program_row(std::size_t row, std::span<const int> values) {
  if (row >= rows_) throw std::out_of_range("program_row: row");
  if (values.size() != dims_) {
    throw std::invalid_argument("program_row: values.size() != dims");
  }
  for (int v : values) {
    if (v < 0 || static_cast<std::size_t>(v) >= encoding_.stored_count()) {
      throw std::out_of_range("program_row: element value out of range");
    }
  }
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int value = values[dim];
    stored_values_[row * dims_ + dim] = value;
    for (std::size_t i = 0; i < fefets_per_cell_; ++i) {
      const int level = encoding_.store_level(static_cast<std::size_t>(value), i);
      const double target = ladder_.vth(static_cast<std::size_t>(level));
      const std::size_t dev = device_index(row, dim, i);
      double programmed = target;
      if (config_.use_preisach_programming) {
        device::PreisachParams pp;
        pp.vth_low_v = config_.fet.vth_min_v;
        pp.vth_high_v = config_.fet.vth_max_v;
        device::PreisachFeFet fet(pp);
        fet.program_to_vth(target, config_.program_tolerance_v);
        programmed = fet.vth();
      }
      // D2D variation perturbs where the device lands around the target.
      vth_[dev] = programmed + vth_offsets_[dev];
    }
  }
}

double CrossbarArray::cell_current(std::size_t dev, double vgs_v,
                                   double vds_v) const {
  if (vds_v <= 0.0) return 0.0;
  const auto& fet = config_.fet;
  double fet_current;
  if (vgs_v >= vth_[dev]) {
    fet_current = fet.isat_a;
  } else {
    const double decades = (vgs_v - vth_[dev]) / (fet.ss_mv_per_dec * 1e-3);
    fet_current = std::max(fet.isat_a * std::pow(10.0, decades),
                           fet.min_leak_a);
  }
  return std::min(fet_current, vds_v / resistances_[dev]);
}

double CrossbarArray::row_current(std::size_t row, std::span<const double> vgs,
                                  std::span<const double> vds) const {
  // The ScL potential rises with the row current through the clamp's
  // residual impedance, reducing every cell's effective Vgs and Vds; a
  // short fixed-point iteration captures the feedback (2-3 iterations
  // suffice at these impedance levels).
  const double source_res = config_.use_opamp_clamp
                                ? config_.opamp.output_res_ohm
                                : config_.unclamped_source_res_ohm;
  const std::size_t per_row = dims_ * fefets_per_cell_;
  const std::size_t base = row * per_row;
  const auto total_current = [&](double v_scl) {
    double sum = 0.0;
    for (std::size_t j = 0; j < per_row; ++j) {
      sum += cell_current(base + j, vgs[j] - v_scl, vds[j] - v_scl);
    }
    return sum;
  };
  if (source_res <= 0.0) return total_current(0.0);
  // Solve v = R_src * I(v) by damped fixed-point iteration; undamped
  // iteration oscillates when R_src * dI/dv is large (the unclamped
  // ablation case).
  double v_scl = 0.0;
  double current = total_current(0.0);
  for (int iter = 0; iter < 60; ++iter) {
    const double v_next = 0.5 * (v_scl + current * source_res);
    current = total_current(v_next);
    if (std::abs(v_next - v_scl) < 1e-7) {
      v_scl = v_next;
      break;
    }
    v_scl = v_next;
  }
  return current;
}

std::vector<double> CrossbarArray::search(std::span<const int> query) const {
  if (query.size() != dims_) {
    throw std::invalid_argument("search: query.size() != dims");
  }
  // Resolve the per-device-column gate and drain biases once.
  const std::size_t per_row = dims_ * fefets_per_cell_;
  std::vector<double> vgs(per_row, 0.0);
  std::vector<double> vds(per_row, 0.0);
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int qv = query[dim];
    if (qv < 0 || static_cast<std::size_t>(qv) >= encoding_.search_count()) {
      throw std::out_of_range("search: query value out of range");
    }
    for (std::size_t i = 0; i < fefets_per_cell_; ++i) {
      const std::size_t col = dim * fefets_per_cell_ + i;
      const int level = encoding_.search_level(static_cast<std::size_t>(qv), i);
      vgs[col] = ladder_.vsearch(static_cast<std::size_t>(level));
      vds[col] = config_.cell.vds_unit_v *
                 encoding_.vds_multiple(static_cast<std::size_t>(qv), i);
    }
  }
  std::vector<double> currents(rows_);
  for (std::size_t row = 0; row < rows_; ++row) {
    currents[row] = row_current(row, vgs, vds);
  }
  return currents;
}

int CrossbarArray::nominal_distance(std::span<const int> query,
                                    std::size_t row) const {
  validate_nominal_query(query);
  if (row >= rows_) {
    throw std::out_of_range("nominal_distance: row out of range");
  }
  return nominal_distance_unchecked(query, row);
}

std::vector<int> CrossbarArray::nominal_distances(
    std::span<const int> query) const {
  validate_nominal_query(query);
  std::vector<int> out(rows_, 0);
  for (std::size_t row = 0; row < rows_; ++row) {
    out[row] = nominal_distance_unchecked(query, row);
  }
  return out;
}

int CrossbarArray::nominal_distance_unchecked(std::span<const int> query,
                                              std::size_t row) const {
  int total = 0;
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    total += encoding_.nominal_current(
        static_cast<std::size_t>(query[dim]),
        static_cast<std::size_t>(stored_value(row, dim)));
  }
  return total;
}

void CrossbarArray::validate_nominal_query(std::span<const int> query) const {
  if (query.size() != dims_) {
    throw std::invalid_argument("nominal_distance: query.size() != dims");
  }
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int qv = query[dim];
    if (qv < 0 || static_cast<std::size_t>(qv) >= encoding_.search_count()) {
      throw std::out_of_range("nominal_distance: query value out of range");
    }
  }
}

double CrossbarArray::device_vth(std::size_t row, std::size_t dim,
                                 std::size_t fefet) const {
  return vth_[device_index(row, dim, fefet)];
}

double CrossbarArray::device_resistance(std::size_t row, std::size_t dim,
                                        std::size_t fefet) const {
  return resistances_[device_index(row, dim, fefet)];
}

}  // namespace ferex::circuit
