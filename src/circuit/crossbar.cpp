#include "circuit/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "device/preisach.hpp"
#include "util/parallel.hpp"

namespace ferex::circuit {

namespace {

// Per-cell current with the subthreshold exponential in factored form
// (see the header comment): gate_factor = exp(Vgs*a), vth_factor =
// exp(-Vth*a), scl_factor = exp(-Vscl*a). Both the flat kernel and the
// reference kernel funnel through this single expression — same
// operations in the same association order — so their results agree bit
// for bit; only how the factors are obtained differs (cached tables vs.
// re-derived per cell).
inline double cell_current_model(double vgs_eff_v, double vds_eff_v,
                                 double vth_v, double inv_r,
                                 double gate_factor, double vth_factor,
                                 double scl_factor, double isat_a,
                                 double min_leak_a) {
  if (vds_eff_v <= 0.0) return 0.0;
  const double fet_current =
      vgs_eff_v >= vth_v
          ? isat_a
          : std::max(isat_a * ((gate_factor * vth_factor) * scl_factor),
                     min_leak_a);
  return std::min(fet_current, vds_eff_v * inv_r);
}

// Gate factors grow as exp(Vgs * ln10/SS); clamp the exponent so extreme
// (sub-6 mV/dec) swing configurations saturate instead of producing inf
// (which would turn inf * underflowed-vth_factor into NaN).
inline double gate_factor_for(double vgs_v, double alpha) {
  return std::exp(std::min(vgs_v * alpha, 700.0));
}

// The damped fixed-point ScL solve: v = R_src * I(v). Undamped iteration
// oscillates when R_src * dI/dv is large (the unclamped ablation case);
// 2-3 damped iterations suffice at clamped impedance levels.
constexpr int kMaxSclIterations = 60;
constexpr double kSclToleranceV = 1e-7;

}  // namespace

CrossbarArray::CrossbarArray(std::size_t rows, std::size_t dims,
                             const encode::CellEncoding& encoding,
                             const device::VoltageLadder& ladder,
                             CrossbarConfig config, util::Rng& rng)
    : rows_(rows),
      dims_(dims),
      fefets_per_cell_(encoding.fefets_per_cell()),
      encoding_(encoding),
      ladder_(ladder),
      config_(config) {
  validate_geometry();
  const std::size_t devices = rows * dims * fefets_per_cell_;
  const device::VariationModel variation(config_.variation);
  vth_offsets_.resize(devices);
  resistances_.resize(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    vth_offsets_[d] = variation.sample_vth_offset(rng);
    resistances_[d] =
        config_.cell.resistance_ohm * variation.sample_r_multiplier(rng);
  }
  init_derived_state();
}

CrossbarArray::CrossbarArray(std::size_t rows, std::size_t dims,
                             const encode::CellEncoding& encoding,
                             const device::VoltageLadder& ladder,
                             CrossbarConfig config,
                             std::vector<double> vth_offsets,
                             std::vector<double> resistances)
    : rows_(rows),
      dims_(dims),
      fefets_per_cell_(encoding.fefets_per_cell()),
      encoding_(encoding),
      ladder_(ladder),
      config_(config),
      vth_offsets_(std::move(vth_offsets)),
      resistances_(std::move(resistances)) {
  validate_geometry();
  const std::size_t devices = rows * dims * fefets_per_cell_;
  if (vth_offsets_.size() != devices || resistances_.size() != devices) {
    throw std::invalid_argument(
        "CrossbarArray: fabrication arrays do not match the geometry");
  }
  init_derived_state();
}

void CrossbarArray::validate_geometry() const {
  if (rows_ == 0 || dims_ == 0) {
    throw std::invalid_argument("CrossbarArray: empty geometry");
  }
  if (ladder_.levels() < encoding_.ladder_levels()) {
    throw std::invalid_argument(
        "CrossbarArray: ladder has fewer levels than the encoding needs");
  }
  if (ladder_.vth(ladder_.levels() - 1) > config_.fet.vth_max_v) {
    throw std::invalid_argument(
        "CrossbarArray: ladder's highest Vth exceeds the device's "
        "programmable window — use a smaller step");
  }
}

void CrossbarArray::init_derived_state() {
  const std::size_t devices = rows_ * dims_ * fefets_per_cell_;
  // Erased state: highest threshold (nothing conducts until programmed).
  vth_.assign(devices, config_.fet.vth_max_v);
  stored_values_.assign(rows_ * dims_, 0);
  live_.assign(rows_, 1);
  live_rows_ = rows_;

  subvt_alpha_ = std::log(10.0) / (config_.fet.ss_mv_per_dec * 1e-3);
  inv_r_.resize(devices);
  vth_factor_.resize(devices);
  for (std::size_t d = 0; d < devices; ++d) {
    inv_r_[d] = 1.0 / resistances_[d];
    vth_factor_[d] = std::exp(-vth_[d] * subvt_alpha_);
  }

  // Per-(search value, fefet) bias tables: search() copies rows out of
  // these instead of chasing encoding/ladder indirections per query.
  const std::size_t search_entries =
      encoding_.search_count() * fefets_per_cell_;
  bias_vgs_.resize(search_entries);
  bias_vds_.resize(search_entries);
  bias_gate_factor_.resize(search_entries);
  for (std::size_t sch = 0; sch < encoding_.search_count(); ++sch) {
    for (std::size_t i = 0; i < fefets_per_cell_; ++i) {
      const std::size_t e = sch * fefets_per_cell_ + i;
      const int level = encoding_.search_level(sch, i);
      bias_vgs_[e] = ladder_.vsearch(static_cast<std::size_t>(level));
      bias_vds_[e] = config_.cell.vds_unit_v * encoding_.vds_multiple(sch, i);
      bias_gate_factor_[e] = gate_factor_for(bias_vgs_[e], subvt_alpha_);
    }
  }
}

void CrossbarArray::program_row(std::size_t row, std::span<const int> values) {
  if (row >= rows_) throw std::out_of_range("program_row: row");
  if (values.size() != dims_) {
    throw std::invalid_argument("program_row: values.size() != dims");
  }
  for (int v : values) {
    if (v < 0 || static_cast<std::size_t>(v) >= encoding_.stored_count()) {
      throw std::out_of_range("program_row: element value out of range");
    }
  }
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int value = values[dim];
    stored_values_[row * dims_ + dim] = value;
    for (std::size_t i = 0; i < fefets_per_cell_; ++i) {
      const int level = encoding_.store_level(static_cast<std::size_t>(value), i);
      const double target = ladder_.vth(static_cast<std::size_t>(level));
      const std::size_t dev = device_index(row, dim, i);
      double programmed = target;
      if (config_.use_preisach_programming) {
        device::PreisachParams pp;
        pp.vth_low_v = config_.fet.vth_min_v;
        pp.vth_high_v = config_.fet.vth_max_v;
        device::PreisachFeFet fet(pp);
        fet.program_to_vth(target, config_.program_tolerance_v);
        programmed = fet.vth();
      }
      // D2D variation perturbs where the device lands around the target.
      vth_[dev] = programmed + vth_offsets_[dev];
      vth_factor_[dev] = std::exp(-vth_[dev] * subvt_alpha_);
    }
  }
}

void CrossbarArray::append_row(std::span<const int> values, util::Rng& rng) {
  // program_row validates values again, but only after the per-device
  // arrays have grown — check here first so a bad vector cannot leave a
  // half-appended erased row behind.
  if (values.size() != dims_) {
    throw std::invalid_argument("append_row: values.size() != dims");
  }
  for (int v : values) {
    if (v < 0 || static_cast<std::size_t>(v) >= encoding_.stored_count()) {
      throw std::out_of_range("append_row: element value out of range");
    }
  }
  const std::size_t per_row = dims_ * fefets_per_cell_;
  const std::size_t old_devices = rows_ * per_row;
  const device::VariationModel variation(config_.variation);
  vth_offsets_.resize(old_devices + per_row);
  resistances_.resize(old_devices + per_row);
  // Same draw order as the constructor (Vth offset then R multiplier per
  // device, devices in row-major order) — appending continues the exact
  // variation sequence a larger construction would have drawn.
  for (std::size_t d = old_devices; d < old_devices + per_row; ++d) {
    vth_offsets_[d] = variation.sample_vth_offset(rng);
    resistances_[d] =
        config_.cell.resistance_ohm * variation.sample_r_multiplier(rng);
  }
  vth_.resize(old_devices + per_row, config_.fet.vth_max_v);
  inv_r_.resize(old_devices + per_row);
  vth_factor_.resize(old_devices + per_row);
  for (std::size_t d = old_devices; d < old_devices + per_row; ++d) {
    inv_r_[d] = 1.0 / resistances_[d];
    vth_factor_[d] = std::exp(-vth_[d] * subvt_alpha_);
  }
  stored_values_.resize((rows_ + 1) * dims_, 0);
  live_.push_back(1);
  ++live_rows_;
  ++rows_;
  program_row(rows_ - 1, values);
}

void CrossbarArray::erase_row(std::size_t row) {
  if (row >= rows_) throw std::out_of_range("erase_row: row");
  if (live_[row] == 0) {
    throw std::logic_error("erase_row: row already erased");
  }
  // Back to the exact constructor state: vth_max with no D2D offset (the
  // offset perturbs where programming lands, not the saturated erased
  // polarization), so an erase-then-reprogram sequence is bit-identical
  // to programming a never-touched slot.
  const std::size_t per_row = dims_ * fefets_per_cell_;
  const std::size_t base = row * per_row;
  for (std::size_t j = 0; j < per_row; ++j) {
    vth_[base + j] = config_.fet.vth_max_v;
    vth_factor_[base + j] = std::exp(-vth_[base + j] * subvt_alpha_);
  }
  live_[row] = 0;
  --live_rows_;
}

void CrossbarArray::overwrite_row(std::size_t row,
                                  std::span<const int> values) {
  // program_row validates the index and every value before its first
  // write, so a throwing overwrite leaves the slot (and its liveness)
  // untouched.
  program_row(row, values);
  if (live_[row] == 0) {
    live_[row] = 1;
    ++live_rows_;
  }
}

CrossbarArray::RowSolve CrossbarArray::solve_row(
    std::size_t row, std::span<const double> vgs, std::span<const double> vds,
    std::span<const double> gate_factors) const {
  const double isat = config_.fet.isat_a;
  const double min_leak = config_.fet.min_leak_a;
  const std::size_t per_row = dims_ * fefets_per_cell_;
  const std::size_t base = row * per_row;
  const double* const vth = vth_.data() + base;
  const double* const inv_r = inv_r_.data() + base;
  const double* const vth_factor = vth_factor_.data() + base;
  // All transcendentals are hoisted out of this loop: per device it is
  // two subtractions, two compares, three multiplies and a min/max over
  // contiguous spans — the vectorizable inner sum.
  const auto total_current = [&](double v_scl, double scl_factor) {
    double sum = 0.0;
    for (std::size_t j = 0; j < per_row; ++j) {
      sum += cell_current_model(vgs[j] - v_scl, vds[j] - v_scl, vth[j],
                                inv_r[j], gate_factors[j], vth_factor[j],
                                scl_factor, isat, min_leak);
    }
    return sum;
  };

  RowSolve solve;
  const double source_res = source_res_ohm();
  if (source_res <= 0.0) {
    solve.current_a = total_current(0.0, 1.0);
    return solve;
  }
  double v_scl = 0.0;
  double current = total_current(0.0, 1.0);
  solve.converged = false;
  for (int iter = 0; iter < kMaxSclIterations; ++iter) {
    const double v_next = 0.5 * (v_scl + current * source_res);
    // exp(-Vscl*a) once per iteration covers the whole row.
    current = total_current(v_next, std::exp(-v_next * subvt_alpha_));
    ++solve.iterations;
    if (std::abs(v_next - v_scl) < kSclToleranceV) {
      v_scl = v_next;
      solve.converged = true;
      break;
    }
    v_scl = v_next;
  }
  solve.current_a = current;
  return solve;
}

std::vector<double> CrossbarArray::search(std::span<const int> query,
                                          bool parallel_rows) const {
  if (query.size() != dims_) {
    throw std::invalid_argument("search: query.size() != dims");
  }
  // Resolve the per-device-column biases by copying rows of the cached
  // tables — no encoding/ladder indirection on the query path.
  const std::size_t per_row = dims_ * fefets_per_cell_;
  std::vector<double> vgs(per_row);
  std::vector<double> vds(per_row);
  std::vector<double> gate_factors(per_row);
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int qv = query[dim];
    if (qv < 0 || static_cast<std::size_t>(qv) >= encoding_.search_count()) {
      throw std::out_of_range("search: query value out of range");
    }
    const std::size_t src = static_cast<std::size_t>(qv) * fefets_per_cell_;
    const std::size_t dst = dim * fefets_per_cell_;
    std::copy_n(bias_vgs_.data() + src, fefets_per_cell_, vgs.data() + dst);
    std::copy_n(bias_vds_.data() + src, fefets_per_cell_, vds.data() + dst);
    std::copy_n(bias_gate_factor_.data() + src, fefets_per_cell_,
                gate_factors.data() + dst);
  }
  std::vector<double> currents(rows_);
  std::vector<RowSolve> solves(rows_);
  const auto run_row = [&](std::size_t row) {
    if (live_[row] == 0) {
      // Erased row: branch disabled in the post-decoder. No solve runs
      // (and none is counted); the +infinity sentinel can never win a
      // minimum-current comparison even for callers that ignore masks.
      currents[row] = std::numeric_limits<double>::infinity();
      return;
    }
    solves[row] = solve_row(row, vgs, vds, gate_factors);
    currents[row] = solves[row].current_a;
  };
  if (parallel_rows && rows_ > 1) {
    util::parallel_for(rows_, run_row);
  } else {
    for (std::size_t row = 0; row < rows_; ++row) run_row(row);
  }
  // One batched counter update per query, so parallel row solves never
  // contend on the shared atomics.
  std::uint64_t iterations = 0;
  std::uint64_t non_converged = 0;
  for (const auto& solve : solves) {
    iterations += static_cast<std::uint64_t>(solve.iterations);
    non_converged += solve.converged ? 0 : 1;
  }
  stat_solves_.fetch_add(live_rows_, std::memory_order_relaxed);
  stat_iterations_.fetch_add(iterations, std::memory_order_relaxed);
  stat_non_converged_.fetch_add(non_converged, std::memory_order_relaxed);
  return currents;
}

double CrossbarArray::cell_current_reference(std::size_t dev, double vgs_v,
                                             double vds_v,
                                             double v_scl) const {
  // Every factor re-derived from first principles, per cell, per
  // iteration — the readable form of the cell model the cached tables
  // must reproduce exactly.
  const double gate_factor = gate_factor_for(vgs_v, subvt_alpha_);
  const double vth_factor = std::exp(-vth_[dev] * subvt_alpha_);
  const double scl_factor = std::exp(-v_scl * subvt_alpha_);
  return cell_current_model(vgs_v - v_scl, vds_v - v_scl, vth_[dev],
                            1.0 / resistances_[dev], gate_factor, vth_factor,
                            scl_factor, config_.fet.isat_a,
                            config_.fet.min_leak_a);
}

std::vector<double> CrossbarArray::search_reference(
    std::span<const int> query) const {
  if (query.size() != dims_) {
    throw std::invalid_argument("search: query.size() != dims");
  }
  const std::size_t per_row = dims_ * fefets_per_cell_;
  std::vector<double> vgs(per_row, 0.0);
  std::vector<double> vds(per_row, 0.0);
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int qv = query[dim];
    if (qv < 0 || static_cast<std::size_t>(qv) >= encoding_.search_count()) {
      throw std::out_of_range("search: query value out of range");
    }
    for (std::size_t i = 0; i < fefets_per_cell_; ++i) {
      const std::size_t col = dim * fefets_per_cell_ + i;
      const int level = encoding_.search_level(static_cast<std::size_t>(qv), i);
      vgs[col] = ladder_.vsearch(static_cast<std::size_t>(level));
      vds[col] = config_.cell.vds_unit_v *
                 encoding_.vds_multiple(static_cast<std::size_t>(qv), i);
    }
  }
  const double source_res = source_res_ohm();
  std::vector<double> currents(rows_);
  for (std::size_t row = 0; row < rows_; ++row) {
    if (live_[row] == 0) {
      // Mirror the optimized kernel's disabled-branch sentinel exactly.
      currents[row] = std::numeric_limits<double>::infinity();
      continue;
    }
    const std::size_t base = row * per_row;
    const auto total_current = [&](double v_scl) {
      double sum = 0.0;
      for (std::size_t j = 0; j < per_row; ++j) {
        sum += cell_current_reference(base + j, vgs[j], vds[j], v_scl);
      }
      return sum;
    };
    if (source_res <= 0.0) {
      currents[row] = total_current(0.0);
      continue;
    }
    double v_scl = 0.0;
    double current = total_current(0.0);
    for (int iter = 0; iter < kMaxSclIterations; ++iter) {
      const double v_next = 0.5 * (v_scl + current * source_res);
      current = total_current(v_next);
      if (std::abs(v_next - v_scl) < kSclToleranceV) {
        v_scl = v_next;
        break;
      }
      v_scl = v_next;
    }
    currents[row] = current;
  }
  return currents;
}

int CrossbarArray::nominal_distance(std::span<const int> query,
                                    std::size_t row) const {
  validate_nominal_query(query);
  if (row >= rows_) {
    throw std::out_of_range("nominal_distance: row out of range");
  }
  int total = 0;
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    total += encoding_.nominal_current(
        static_cast<std::size_t>(query[dim]),
        static_cast<std::size_t>(stored_value(row, dim)));
  }
  return total;
}

std::vector<int> CrossbarArray::nominal_distances(
    std::span<const int> query) const {
  validate_nominal_query(query);
  // Hoist the per-dim LUT-row resolution out of the row loop; the row
  // loop is then a gather over the contiguous stored values.
  std::vector<const int*> lut_rows(dims_);
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    lut_rows[dim] =
        encoding_.nominal_currents(static_cast<std::size_t>(query[dim]))
            .data();
  }
  std::vector<int> out(rows_, 0);
  for (std::size_t row = 0; row < rows_; ++row) {
    if (live_[row] == 0) {
      // Disabled branch: the integer-domain analogue of search()'s
      // +infinity sentinel, so a caller ignoring the mask never sees an
      // erased row's stale values as a finite distance.
      out[row] = std::numeric_limits<int>::max();
      continue;
    }
    const int* const stored = stored_values_.data() + row * dims_;
    int total = 0;
    for (std::size_t dim = 0; dim < dims_; ++dim) {
      total += lut_rows[dim][stored[dim]];
    }
    out[row] = total;
  }
  return out;
}

std::vector<int> CrossbarArray::nominal_distances_reference(
    std::span<const int> query) const {
  validate_nominal_query(query);
  std::vector<int> out(rows_, 0);
  for (std::size_t row = 0; row < rows_; ++row) {
    if (live_[row] == 0) {
      out[row] = std::numeric_limits<int>::max();
      continue;
    }
    int total = 0;
    for (std::size_t dim = 0; dim < dims_; ++dim) {
      total += encoding_.nominal_current_reference(
          static_cast<std::size_t>(query[dim]),
          static_cast<std::size_t>(stored_value(row, dim)));
    }
    out[row] = total;
  }
  return out;
}

void CrossbarArray::validate_nominal_query(std::span<const int> query) const {
  if (query.size() != dims_) {
    throw std::invalid_argument("nominal_distance: query.size() != dims");
  }
  for (std::size_t dim = 0; dim < dims_; ++dim) {
    const int qv = query[dim];
    if (qv < 0 || static_cast<std::size_t>(qv) >= encoding_.search_count()) {
      throw std::out_of_range("nominal_distance: query value out of range");
    }
  }
}

SclSolveStats CrossbarArray::scl_solve_stats() const noexcept {
  SclSolveStats stats;
  stats.solves = stat_solves_.load(std::memory_order_relaxed);
  stats.iterations = stat_iterations_.load(std::memory_order_relaxed);
  stats.non_converged = stat_non_converged_.load(std::memory_order_relaxed);
  return stats;
}

void CrossbarArray::reset_scl_solve_stats() const noexcept {
  stat_solves_.store(0, std::memory_order_relaxed);
  stat_iterations_.store(0, std::memory_order_relaxed);
  stat_non_converged_.store(0, std::memory_order_relaxed);
}

double CrossbarArray::device_vth(std::size_t row, std::size_t dim,
                                 std::size_t fefet) const {
  return vth_[device_index(row, dim, fefet)];
}

double CrossbarArray::device_resistance(std::size_t row, std::size_t dim,
                                        std::size_t fefet) const {
  return resistances_[device_index(row, dim, fefet)];
}

}  // namespace ferex::circuit
