// Loser-Take-All (LTA) circuit — the nearest-neighbor detector.
//
// The LTA compares the aggregated ScL currents of all rows and flags the
// row with the MINIMUM current, i.e. the stored vector at the smallest
// distance from the query (Sec. III-A; current-domain WTA dual, cf.
// CoSiME ICCAD'22). Real comparators have input-referred offset, modeled
// as per-row Gaussian current noise; that offset is what limits sensing
// when two rows' distances differ by one unit current.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ferex::circuit {

struct LtaParams {
  /// Comparator input-referred offset, relative to the unit current I0.
  double offset_sigma_rel = 0.03;
  /// Static power of the shared comparison core [W].
  double core_power_w = 12e-6;
  /// Incremental power per competing row branch [W] (grows only weakly
  /// with rows — the paper notes LTA power is insignificant at scale).
  double per_row_power_w = 0.15e-6;
  /// Base decision delay plus a logarithmic term in the row count [s].
  double base_delay_s = 2.0e-9;
  double delay_per_log2_row_s = 0.5e-9;
};

/// Result of one LTA decision.
struct LtaDecision {
  std::size_t winner = 0;          ///< row index with minimum sensed current
  double winner_current_a = 0.0;   ///< sensed (noisy) current of the winner
  double margin_a = 0.0;           ///< gap to the runner-up (sensed)
};

class LtaCircuit {
 public:
  explicit LtaCircuit(LtaParams params = {}) : params_(params) {}

  const LtaParams& params() const noexcept { return params_; }

  /// Picks the minimum-current row. `unit_current_a` scales the offset
  /// noise; pass rng = nullptr for an ideal (noiseless) decision.
  ///
  /// `live` is the post-decoder row mask (nonzero = row branch enabled):
  /// a masked row's comparator branch is physically disconnected, so it
  /// is skipped outright — it can never win and, crucially, it draws no
  /// comparator-offset noise, leaving the live rows' noise sequence
  /// exactly what it would be over an array holding only the live rows.
  /// An empty mask means every row is live; otherwise the mask must
  /// match the currents in length and enable at least one row.
  LtaDecision decide(std::span<const double> row_currents_a,
                     double unit_current_a, util::Rng* rng,
                     std::span<const std::uint8_t> live = {}) const;

  /// k-NN extension: repeatedly applies the LTA, masking previous
  /// winners (the paper's LTA + post-decoder supports NN search; k > 1 is
  /// realized by iterative masking). Returns row indices, nearest first.
  /// A shim over decide_k_detailed — bit-identical noise draws.
  std::vector<std::size_t> decide_k(std::span<const double> row_currents_a,
                                    double unit_current_a, std::size_t k,
                                    util::Rng* rng,
                                    std::span<const std::uint8_t> live =
                                        {}) const;

  /// decide_k with the full per-round decision: each entry carries the
  /// round's winner, its sensed current, and its margin to the best
  /// remaining (unmasked) row — what a serving layer needs to report
  /// top-k hits instead of bare indices. Round 0 is bit-identical to
  /// decide() over the same currents and rng state; on the final round
  /// with every other row masked the margin is +infinity (nothing left
  /// to compare against).
  ///
  /// `live` (see decide) bounds k: 1 <= k <= live rows. Round winners
  /// are masked by driving their current to +infinity while staying
  /// live — a disabled-but-drawn branch, the pre-mutation behaviour —
  /// whereas dead rows are skipped with no draw at all.
  std::vector<LtaDecision> decide_k_detailed(
      std::span<const double> row_currents_a, double unit_current_a,
      std::size_t k, util::Rng* rng,
      std::span<const std::uint8_t> live = {}) const;

  /// Winner-take-all dual: picks the MAXIMUM-current row. Used when the
  /// row current encodes similarity instead of distance (best-match /
  /// cosine-style AMs, cf. Table I's IEDM'20 row and CoSiME).
  LtaDecision decide_max(std::span<const double> row_currents_a,
                         double unit_current_a, util::Rng* rng) const;

  /// Decision delay for an array with `rows` competing branches.
  double delay_s(std::size_t rows) const noexcept;

  /// Energy of one decision over `rows` branches taking `duration_s`.
  double energy_j(std::size_t rows, double duration_s) const noexcept;

 private:
  LtaParams params_;
};

}  // namespace ferex::circuit
