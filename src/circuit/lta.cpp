#include "circuit/lta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ferex::circuit {

LtaDecision LtaCircuit::decide(std::span<const double> row_currents_a,
                               double unit_current_a, util::Rng* rng,
                               std::span<const std::uint8_t> live) const {
  if (row_currents_a.empty()) {
    throw std::invalid_argument("LtaCircuit::decide: no rows");
  }
  if (!live.empty() && live.size() != row_currents_a.size()) {
    throw std::invalid_argument(
        "LtaCircuit::decide: live mask size != row count");
  }
  LtaDecision decision;
  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
  std::size_t competing = 0;
  const double sigma = params_.offset_sigma_rel * unit_current_a;
  for (std::size_t r = 0; r < row_currents_a.size(); ++r) {
    // A masked row's branch is disconnected ahead of the comparator: it
    // neither competes nor draws offset noise.
    if (!live.empty() && live[r] == 0) continue;
    ++competing;
    double sensed = row_currents_a[r];
    if (rng != nullptr && sigma > 0.0) sensed += rng->gaussian(0.0, sigma);
    if (sensed < best) {
      second = best;
      best = sensed;
      decision.winner = r;
    } else if (sensed < second) {
      second = sensed;
    }
  }
  if (competing == 0) {
    throw std::invalid_argument("LtaCircuit::decide: no live rows");
  }
  decision.winner_current_a = best;
  decision.margin_a = (competing > 1) ? second - best : 0.0;
  return decision;
}

std::vector<std::size_t> LtaCircuit::decide_k(
    std::span<const double> row_currents_a, double unit_current_a,
    std::size_t k, util::Rng* rng, std::span<const std::uint8_t> live) const {
  const auto detailed =
      decide_k_detailed(row_currents_a, unit_current_a, k, rng, live);
  std::vector<std::size_t> winners;
  winners.reserve(detailed.size());
  for (const auto& d : detailed) winners.push_back(d.winner);
  return winners;
}

std::vector<LtaDecision> LtaCircuit::decide_k_detailed(
    std::span<const double> row_currents_a, double unit_current_a,
    std::size_t k, util::Rng* rng, std::span<const std::uint8_t> live) const {
  if (!live.empty() && live.size() != row_currents_a.size()) {
    throw std::invalid_argument(
        "LtaCircuit::decide_k: live mask size != row count");
  }
  std::size_t live_rows = row_currents_a.size();
  if (!live.empty()) {
    live_rows = 0;
    for (const std::uint8_t l : live) live_rows += l != 0 ? 1 : 0;
  }
  if (k == 0 || k > live_rows) {
    throw std::invalid_argument("LtaCircuit::decide_k: bad k");
  }
  std::vector<double> currents(row_currents_a.begin(), row_currents_a.end());
  std::vector<LtaDecision> decisions;
  decisions.reserve(k);
  for (std::size_t round = 0; round < k; ++round) {
    decisions.push_back(decide(currents, unit_current_a, rng, live));
    // Mask the winner for subsequent rounds (post-decoder disables the
    // row branch). Unlike a dead row, a round winner stays live and
    // keeps drawing comparator noise — only its current is driven away.
    currents[decisions.back().winner] = std::numeric_limits<double>::infinity();
  }
  return decisions;
}

LtaDecision LtaCircuit::decide_max(std::span<const double> row_currents_a,
                                   double unit_current_a,
                                   util::Rng* rng) const {
  if (row_currents_a.empty()) {
    throw std::invalid_argument("LtaCircuit::decide_max: no rows");
  }
  // WTA over currents == LTA over negated currents; the comparator noise
  // model is symmetric.
  std::vector<double> negated(row_currents_a.size());
  for (std::size_t r = 0; r < row_currents_a.size(); ++r) {
    negated[r] = -row_currents_a[r];
  }
  LtaDecision d = decide(negated, unit_current_a, rng);
  d.winner_current_a = -d.winner_current_a;
  return d;
}

double LtaCircuit::delay_s(std::size_t rows) const noexcept {
  const double lg = rows > 1 ? std::log2(static_cast<double>(rows)) : 0.0;
  return params_.base_delay_s + params_.delay_per_log2_row_s * lg;
}

double LtaCircuit::energy_j(std::size_t rows, double duration_s) const noexcept {
  const double power =
      params_.core_power_w + params_.per_row_power_w * static_cast<double>(rows);
  return power * duration_s;
}

}  // namespace ferex::circuit
