// Row interface circuit (Fig. 2c): MUX + op-amp source-line clamp.
//
// During search the op-amp holds every ScL at the virtual source voltage
// so the Vds across each cell stays exact; otherwise the row current
// lifting the ScL potential would shrink Vds and corrupt the
// current-domain distance sum (Sec. III-A). The op-amp's slew rate limits
// how fast the ScL settles — the paper attributes ~60 % of total search
// delay to this phase.
#pragma once

#include "circuit/parasitics.hpp"

namespace ferex::circuit {

struct OpAmpParams {
  /// Output slew rate [V/s]; the paper uses the slew-rate-enhanced
  /// two-stage amplifier of Kassiri (ISCAS'13) scaled to 45 nm.
  double slew_rate_v_per_s = 150e6;
  double unity_gain_bw_hz = 500e6;   ///< closed-loop bandwidth [Hz]
  double output_res_ohm = 200.0;     ///< residual closed-loop output R
  double static_power_w = 4e-6;      ///< per-row op-amp static power
  double settle_swing_v = 0.3;       ///< worst-case ScL excursion to slew
  double settle_accuracy = 1e-3;     ///< linear-settling accuracy target
};

/// Behavioral op-amp clamp + settling model.
class InterfaceCircuit {
 public:
  explicit InterfaceCircuit(OpAmpParams params = {}) : params_(params) {}

  const OpAmpParams& params() const noexcept { return params_; }

  /// Residual ScL voltage for a given row current: the clamp is not
  /// ideal, the row current through the closed-loop output resistance
  /// lifts the virtual node slightly.
  double residual_scl_voltage(double row_current_a) const noexcept {
    return row_current_a * params_.output_res_ohm;
  }

  /// Settling time of one ScL with capacitive load `cap_f`:
  /// slewing phase + linear settling to `settle_accuracy`.
  double settle_time_s(double cap_f) const noexcept;

  /// Energy drawn by one op-amp during a search of duration t.
  double energy_j(double duration_s) const noexcept {
    return params_.static_power_w * duration_s;
  }

 private:
  OpAmpParams params_;
};

}  // namespace ferex::circuit
