#include "circuit/interface.hpp"

#include <cmath>

namespace ferex::circuit {

double InterfaceCircuit::settle_time_s(double cap_f) const noexcept {
  // Slewing: the op-amp output charges the ScL load at its slew rate;
  // larger arrays (more columns) load the line more, slowing this phase
  // proportionally to the capacitance.
  //
  // The effective slew rate degrades with load beyond the amp's design
  // capacitance C0: SR_eff = SR / (1 + C/C0).
  constexpr double kDesignLoadF = 200e-15;
  const double sr_eff =
      params_.slew_rate_v_per_s / (1.0 + cap_f / kDesignLoadF);
  const double t_slew = params_.settle_swing_v / sr_eff;

  // Linear settling: single-pole response at the closed-loop bandwidth,
  // also degraded by the load; settle to settle_accuracy.
  const double bw_eff = params_.unity_gain_bw_hz / (1.0 + cap_f / kDesignLoadF);
  const double tau = 1.0 / (2.0 * M_PI * bw_eff);
  const double t_linear = tau * std::log(1.0 / params_.settle_accuracy);

  return t_slew + t_linear;
}

}  // namespace ferex::circuit
