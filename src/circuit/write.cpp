#include "circuit/write.hpp"

#include <cmath>

namespace ferex::circuit {

namespace {

/// Polarization-switching work of one pulse: Q * V with an effective
/// switched charge proportional to the polarization change.
double switching_energy_j(double delta_p, double amplitude_v,
                          double gate_cap_f) {
  // Displacement charge ~ C_gate * V plus remanent switching, folded into
  // an effective 3x factor at full switching.
  const double q_eff = gate_cap_f * (1.0 + 2.0 * std::abs(delta_p));
  return q_eff * amplitude_v * amplitude_v;
}

}  // namespace

WriteDriver::WriteDriver(WriteDriverParams params) : params_(params) {}

WriteCost WriteDriver::program_row(std::span<const double> target_vths) const {
  WriteCost cost;
  const double v_write = params_.device.write_v;
  const double line_cap =
      params_.wordline_cap_f_per_cell *
      static_cast<double>(target_vths.size());

  for (double target : target_vths) {
    device::PreisachFeFet fet(params_.device);
    const double p_before = fet.polarization();
    const std::size_t pulses =
        fet.program_to_vth(target, params_.vth_tolerance_v);
    const double p_after = fet.polarization();

    cost.pulses += pulses;
    // Each pulse: charge the gate + share of the wordline, then a verify
    // read. Pulse width dominated by the nominal width.
    const double per_pulse_drive =
        (params_.gate_cap_f + line_cap / static_cast<double>(
                                             target_vths.size())) *
        v_write * v_write;
    cost.energy_j += static_cast<double>(pulses) *
                         (per_pulse_drive + params_.verify_read_energy_j) +
                     switching_energy_j(p_after - p_before, v_write,
                                        params_.gate_cap_f);
    cost.latency_s += static_cast<double>(pulses) *
                      (params_.device.pulse_width_s + params_.verify_read_s);
  }
  return cost;
}

WriteCost WriteDriver::erase_row(std::size_t row_cells) const {
  WriteCost cost;
  if (row_cells == 0) return cost;
  const double v_write = params_.device.write_v;
  const double cells = static_cast<double>(row_cells);
  const double line_cap = params_.wordline_cap_f_per_cell * cells;
  cost.pulses = 1;  // one row-wide saturating pulse, devices in parallel
  cost.latency_s = params_.device.pulse_width_s;
  // Full polarization reversal (|dP| = 2) is the worst case a device can
  // pay; a partially-programmed device pays less, but the driver sizes
  // (and we charge) for the bound.
  cost.energy_j = (params_.gate_cap_f * cells + line_cap) * v_write * v_write +
                  cells * switching_energy_j(2.0, v_write, params_.gate_cap_f);
  return cost;
}

DisturbReport WriteDriver::disturb_after(std::size_t cycles) const {
  DisturbReport report;
  report.inhibit_voltage_v = params_.device.write_v / 2.0;

  // A victim cell in an unselected row sees the half-voltage pulse every
  // time any other row is programmed. Track its state through the
  // Preisach model across all exposures (both polarities occur during
  // erase/program phases).
  device::PreisachFeFet victim(params_.device);
  victim.program_to_vth(
      (params_.device.vth_low_v + params_.device.vth_high_v) / 2.0);
  const double vth_before = victim.vth();
  for (std::size_t c = 0; c < cycles; ++c) {
    victim.apply_pulse(report.inhibit_voltage_v,
                       params_.device.pulse_width_s);
    victim.apply_pulse(-report.inhibit_voltage_v,
                       params_.device.pulse_width_s);
  }
  report.max_vth_drift_v = std::abs(victim.vth() - vth_before);
  report.disturb_free = report.max_vth_drift_v == 0.0;
  return report;
}

WriteCost WriteDriver::program_array(
    std::size_t rows, std::span<const double> row_targets) const {
  WriteCost total;
  for (std::size_t r = 0; r < rows; ++r) {
    const auto cost = program_row(row_targets);
    total.pulses += cost.pulses;
    total.energy_j += cost.energy_j;
    total.latency_s += cost.latency_s;  // rows are written sequentially
  }
  return total;
}

}  // namespace ferex::circuit
