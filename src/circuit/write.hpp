// Write/erase path of the FeReX array (Sec. III-A write phase).
//
// During programming, the interface MUX routes the row lines (RLs):
// the selected row's RL is 0 V while unselected rows are raised to
// Vwrite/2 — the half-voltage write-inhibit scheme that keeps the
// effective gate pulse on unselected cells below the coercive voltage
// (Ni et al., EDL'18: write disturb in FeFET arrays).
//
// This module models the cost and integrity of that phase:
//   * per-row programming latency (erase + program-verify pulse trains
//     through the Preisach device model);
//   * programming energy (gate-line charging per pulse + polarization
//     switching work);
//   * disturb accounting: the cumulative half-voltage pulse exposure of
//     unselected rows, and the worst-case Vth drift it causes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "device/preisach.hpp"

namespace ferex::circuit {

struct WriteDriverParams {
  device::PreisachParams device{};
  double gate_cap_f = 0.12e-15;        ///< FeFET gate capacitance [F]
  double wordline_cap_f_per_cell = 0.25e-15;  ///< SL wiring load per cell
  double verify_read_s = 20e-9;        ///< one verify read after a pulse
  double verify_read_energy_j = 5e-15; ///< energy of one verify read
  double vth_tolerance_v = 5e-3;       ///< program-verify target accuracy
};

/// Cost summary of programming one row of cells.
struct WriteCost {
  std::size_t pulses = 0;        ///< total programming pulses issued
  double latency_s = 0.0;        ///< erase + pulse train + verify reads
  double energy_j = 0.0;         ///< drivers + switching + verify
};

/// Integrity summary for the rest of the array while one row is written.
struct DisturbReport {
  double inhibit_voltage_v = 0.0;   ///< Vwrite/2 seen by unselected rows
  double max_vth_drift_v = 0.0;     ///< worst Vth movement on victims
  bool disturb_free = false;        ///< true iff drift is exactly zero
};

class WriteDriver {
 public:
  explicit WriteDriver(WriteDriverParams params = {});

  const WriteDriverParams& params() const noexcept { return params_; }

  /// Programs one row of `targets` (per-device target Vth) through the
  /// Preisach program-and-verify flow; returns its cost. `row_cells` is
  /// the number of devices sharing the row's wordline load.
  WriteCost program_row(std::span<const double> target_vths) const;

  /// Cost of erasing one row of `row_cells` devices: a single saturating
  /// row-wide erase pulse (all gates driven together, no verify read —
  /// the erased state is the saturated polarization, not a trimmed
  /// level), charging every gate plus the shared line and paying
  /// worst-case full polarization reversal per device. This is the
  /// erase half of an overwrite; program_row is the other half.
  WriteCost erase_row(std::size_t row_cells) const;

  /// Simulates `cycles` full-row writes with the half-voltage inhibit
  /// scheme and reports the worst-case disturb on unselected victims.
  DisturbReport disturb_after(std::size_t cycles) const;

  /// Erase-then-program latency estimate for an entire array.
  WriteCost program_array(std::size_t rows,
                          std::span<const double> row_targets) const;

 private:
  WriteDriverParams params_;
};

}  // namespace ferex::circuit
