// The 1FeFET1R crossbar array (Fig. 2a).
//
// Rows store data vectors (one vector per row, one cell of k FeFETs per
// vector element); search lines (SLs) and drain lines (DLs) are shared
// per FeFET column, source lines (ScLs) aggregate each row's current.
// A search applies the encoding's per-element gate voltages and drain
// multiples; the row current is the current-domain distance sum that the
// LTA then minimizes over rows.
//
// Device-to-device variation (Vth offset, series-R spread) is sampled per
// device at construction — it is a property of the fabricated array, not
// of an individual operation.
//
// Hot-path layout: search() is table lookups over flat arrays. The
// per-(search value, fefet) gate/drain biases are cached at construction,
// and the subthreshold exponential is factored as
//
//   Isat * 10^((Vgs - Vscl - Vth) / SS)
//     = Isat * exp(Vgs*a) * exp(-Vth*a) * exp(-Vscl*a),   a = ln10 / SS
//
// so exp(Vgs*a) is cached per search value, exp(-Vth*a) per device at
// program time, and exp(-Vscl*a) once per fixed-point iteration per row —
// the per-device inner loop is pure multiply/min/max over contiguous
// spans. search_reference() retains the straightforward per-device kernel
// (same factored expression, re-derived biases, scalar loop); tests
// assert the optimized path matches it bit for bit.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "circuit/interface.hpp"
#include "device/levels.hpp"
#include "device/one_fefet_one_r.hpp"
#include "device/variation.hpp"
#include "encode/encoding_table.hpp"
#include "util/rng.hpp"

namespace ferex::circuit {

struct CrossbarConfig {
  device::CellParams cell{};
  device::FeFetParams fet{};
  device::VariationParams variation{};
  OpAmpParams opamp{};

  /// When false (ablation), the ScL is not held by the op-amp and the row
  /// current sees a much larger source impedance, corrupting Vds.
  bool use_opamp_clamp = true;

  /// Source impedance of the bare ScL when the clamp is disabled.
  double unclamped_source_res_ohm = 50e3;

  /// Program each device through the Preisach pulse model instead of
  /// directly setting Vth (slower; used to validate the write path).
  bool use_preisach_programming = false;

  /// Program-and-verify tolerance for the Preisach path.
  double program_tolerance_v = 5e-3;
};

/// Running totals of the damped fixed-point ScL solves behind search()
/// (one solve per row per circuit-fidelity query). `non_converged` counts
/// solves that hit the iteration cap without meeting the tolerance —
/// surfaced through core/profiler instead of silently capping.
struct SclSolveStats {
  std::uint64_t solves = 0;
  std::uint64_t iterations = 0;
  std::uint64_t non_converged = 0;
};

class CrossbarArray {
 public:
  /// Builds an array of `rows` x `dims` cells wired for `encoding`.
  /// The ladder must offer at least encoding.ladder_levels() levels.
  CrossbarArray(std::size_t rows, std::size_t dims,
                const encode::CellEncoding& encoding,
                const device::VoltageLadder& ladder, CrossbarConfig config,
                util::Rng& rng);

  /// Snapshot-restore constructor: installs previously fabricated
  /// per-device arrays (row-major, `rows*dims*fefets` each) instead of
  /// drawing variation from an RNG, then rebuilds every derived table
  /// exactly as the drawing constructor does. Rows start live and
  /// erased; the caller re-programs (or erases) each slot from its
  /// snapshot. Throws std::invalid_argument on a size mismatch.
  CrossbarArray(std::size_t rows, std::size_t dims,
                const encode::CellEncoding& encoding,
                const device::VoltageLadder& ladder, CrossbarConfig config,
                std::vector<double> vth_offsets,
                std::vector<double> resistances);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t fefets_per_cell() const noexcept { return fefets_per_cell_; }
  const encode::CellEncoding& encoding() const noexcept { return encoding_; }
  const device::VoltageLadder& ladder() const noexcept { return ladder_; }
  const CrossbarConfig& config() const noexcept { return config_; }

  /// Nominal unit current I0 = vds_unit / R.
  double unit_current_a() const noexcept {
    return config_.cell.vds_unit_v / config_.cell.resistance_ohm;
  }

  /// Devices in the array — the work-size measure intra-query
  /// parallelism heuristics use.
  std::size_t device_count() const noexcept {
    return rows_ * dims_ * fefets_per_cell_;
  }

  /// Programs one row with a data vector (element values index the
  /// encoding's stored rows). values.size() must equal dims().
  void program_row(std::size_t row, std::span<const int> values);

  /// Grows the array by one row and programs it — the streaming-insert
  /// write path (no re-store of existing rows). The new row's device
  /// variation is drawn from `rng` in the same per-device order the
  /// constructor uses, so an array built by N-row construction followed
  /// by appends is bit-identical (devices, currents, searches) to one
  /// constructed with all rows up front from the same generator.
  /// Validates before mutating: a throwing call leaves the array as-is.
  void append_row(std::span<const int> values, util::Rng& rng);

  /// Erases one row back to the constructor's erased state (every device
  /// at vth_max, nothing conducting) and masks it in the post-decoder:
  /// searches skip it (its reported current is +infinity) and the LTA
  /// never considers it. Erasing rather than merely masking matters
  /// physically — an erased row's near-zero current would otherwise win
  /// every LTA round. Throws std::out_of_range on a bad row index,
  /// std::logic_error when the row is already erased.
  void erase_row(std::size_t row);

  /// Reprograms one slot in place (program_row semantics — the device
  /// variation stays the slot's own) and marks it live again, whether it
  /// currently holds data or was erased. Validates before mutating.
  void overwrite_row(std::size_t row, std::span<const int> values);

  /// True when the row competes in searches (not erased).
  bool row_live(std::size_t row) const {
    if (row >= rows_) throw std::out_of_range("row_live: row");
    return live_[row] != 0;
  }

  /// Rows currently live (rows() counts physical slots).
  std::size_t live_rows() const noexcept { return live_rows_; }

  /// The post-decoder row mask (1 = live), indexed by physical row —
  /// what the LTA's masked decide overloads consume.
  std::span<const std::uint8_t> live_mask() const noexcept { return live_; }

  /// Stored element value of a row (what was programmed).
  int stored_value(std::size_t row, std::size_t dim) const {
    return stored_values_[row * dims_ + dim];
  }

  /// Runs the search phase for a query vector (element values index the
  /// encoding's search rows). Returns the per-row ScL currents [A].
  /// When `parallel_rows` is set, rows fan across the util::parallel_for
  /// worker pool; results are bit-identical either way (rows share no
  /// mutable state).
  std::vector<double> search(std::span<const int> query,
                             bool parallel_rows = false) const;

  /// Reference implementation of search(): per-device scalar loop,
  /// biases re-derived from the encoding/ladder per query, no cached
  /// tables. Same cell-current expression as the optimized kernel, so
  /// the two agree bit for bit; retained to guard the fast path.
  std::vector<double> search_reference(std::span<const int> query) const;

  /// Ideal integer distance the array should report for (query, row),
  /// from the encoding alone (no devices) — the software reference.
  int nominal_distance(std::span<const int> query, std::size_t row) const;

  /// nominal_distance for every row at once: validates the query a single
  /// time, resolves the per-dim LUT rows once, then gathers over the
  /// contiguous stored values — the nominal-fidelity hot path. Erased
  /// rows report INT_MAX (the integer analogue of search()'s +infinity
  /// disabled-branch sentinel).
  std::vector<int> nominal_distances(std::span<const int> query) const;

  /// Reference implementation of nominal_distances() (per-FeFET walk via
  /// the encoding's level matrices); retained to guard the LUT path.
  std::vector<int> nominal_distances_reference(
      std::span<const int> query) const;

  /// Snapshot of the fixed-point solve counters (search() only; the
  /// reference kernel does not count). Thread-safe.
  SclSolveStats scl_solve_stats() const noexcept;

  /// Zeroes the fixed-point solve counters.
  void reset_scl_solve_stats() const noexcept;

  /// Post-variation threshold voltage of one device (for tests/analysis).
  double device_vth(std::size_t row, std::size_t dim, std::size_t fefet) const;

  /// Post-variation series resistance of one device.
  double device_resistance(std::size_t row, std::size_t dim,
                           std::size_t fefet) const;

  /// Flat per-device fabrication arrays (row-major), as consumed by the
  /// restore constructor — what an index snapshot persists.
  std::span<const double> device_vth_offsets() const noexcept {
    return vth_offsets_;
  }
  std::span<const double> device_resistances() const noexcept {
    return resistances_;
  }

 private:
  /// Shared tail of both constructors: erased-state arrays and every
  /// derived table, computed from the already-set fabrication arrays.
  void init_derived_state();
  void validate_geometry() const;
  void validate_nominal_query(std::span<const int> query) const;
  std::size_t device_index(std::size_t row, std::size_t dim,
                           std::size_t fefet) const noexcept {
    return (row * dims_ + dim) * fefets_per_cell_ + fefet;
  }
  /// Residual impedance the row current develops the ScL potential over.
  double source_res_ohm() const noexcept {
    return config_.use_opamp_clamp ? config_.opamp.output_res_ohm
                                   : config_.unclamped_source_res_ohm;
  }
  struct RowSolve {
    double current_a = 0.0;
    int iterations = 0;
    bool converged = true;
  };
  /// One row's damped fixed-point ScL solve over the flat device arrays.
  /// Pure — search() aggregates the per-row results into the shared solve
  /// counters once per query, so parallel rows never contend on them.
  RowSolve solve_row(std::size_t row, std::span<const double> vgs,
                     std::span<const double> vds,
                     std::span<const double> gate_factors) const;
  double cell_current_reference(std::size_t dev, double vgs_v, double vds_v,
                                double v_scl) const;

  std::size_t rows_;
  std::size_t dims_;
  std::size_t fefets_per_cell_;
  encode::CellEncoding encoding_;
  device::VoltageLadder ladder_;
  CrossbarConfig config_;

  std::vector<double> vth_offsets_;   ///< per-device D2D Vth offset
  std::vector<double> resistances_;   ///< per-device series R (with spread)
  std::vector<double> vth_;           ///< programmed Vth (incl. offset)
  std::vector<int> stored_values_;    ///< per (row, dim) element value
  std::vector<std::uint8_t> live_;    ///< post-decoder row mask (1 = live)
  std::size_t live_rows_ = 0;         ///< rows with live_ == 1

  // --- cached hot-path tables -------------------------------------------
  double subvt_alpha_ = 0.0;          ///< ln10 / SS [1/V]
  std::vector<double> bias_vgs_;      ///< [sch*fefets+i] gate bias [V]
  std::vector<double> bias_vds_;      ///< [sch*fefets+i] drain bias [V]
  std::vector<double> bias_gate_factor_;  ///< [sch*fefets+i] exp(Vgs*a)
  std::vector<double> inv_r_;         ///< per-device 1 / R
  std::vector<double> vth_factor_;    ///< per-device exp(-Vth*a)

  mutable std::atomic<std::uint64_t> stat_solves_{0};
  mutable std::atomic<std::uint64_t> stat_iterations_{0};
  mutable std::atomic<std::uint64_t> stat_non_converged_{0};
};

}  // namespace ferex::circuit
