// The 1FeFET1R crossbar array (Fig. 2a).
//
// Rows store data vectors (one vector per row, one cell of k FeFETs per
// vector element); search lines (SLs) and drain lines (DLs) are shared
// per FeFET column, source lines (ScLs) aggregate each row's current.
// A search applies the encoding's per-element gate voltages and drain
// multiples; the row current is the current-domain distance sum that the
// LTA then minimizes over rows.
//
// Device-to-device variation (Vth offset, series-R spread) is sampled per
// device at construction — it is a property of the fabricated array, not
// of an individual operation.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "circuit/interface.hpp"
#include "device/levels.hpp"
#include "device/one_fefet_one_r.hpp"
#include "device/variation.hpp"
#include "encode/encoding_table.hpp"
#include "util/rng.hpp"

namespace ferex::circuit {

struct CrossbarConfig {
  device::CellParams cell{};
  device::FeFetParams fet{};
  device::VariationParams variation{};
  OpAmpParams opamp{};

  /// When false (ablation), the ScL is not held by the op-amp and the row
  /// current sees a much larger source impedance, corrupting Vds.
  bool use_opamp_clamp = true;

  /// Source impedance of the bare ScL when the clamp is disabled.
  double unclamped_source_res_ohm = 50e3;

  /// Program each device through the Preisach pulse model instead of
  /// directly setting Vth (slower; used to validate the write path).
  bool use_preisach_programming = false;

  /// Program-and-verify tolerance for the Preisach path.
  double program_tolerance_v = 5e-3;
};

class CrossbarArray {
 public:
  /// Builds an array of `rows` x `dims` cells wired for `encoding`.
  /// The ladder must offer at least encoding.ladder_levels() levels.
  CrossbarArray(std::size_t rows, std::size_t dims,
                const encode::CellEncoding& encoding,
                const device::VoltageLadder& ladder, CrossbarConfig config,
                util::Rng& rng);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t dims() const noexcept { return dims_; }
  std::size_t fefets_per_cell() const noexcept { return fefets_per_cell_; }
  const encode::CellEncoding& encoding() const noexcept { return encoding_; }
  const device::VoltageLadder& ladder() const noexcept { return ladder_; }
  const CrossbarConfig& config() const noexcept { return config_; }

  /// Nominal unit current I0 = vds_unit / R.
  double unit_current_a() const noexcept {
    return config_.cell.vds_unit_v / config_.cell.resistance_ohm;
  }

  /// Programs one row with a data vector (element values index the
  /// encoding's stored rows). values.size() must equal dims().
  void program_row(std::size_t row, std::span<const int> values);

  /// Stored element value of a row (what was programmed).
  int stored_value(std::size_t row, std::size_t dim) const {
    return stored_values_[row * dims_ + dim];
  }

  /// Runs the search phase for a query vector (element values index the
  /// encoding's search rows). Returns the per-row ScL currents [A].
  std::vector<double> search(std::span<const int> query) const;

  /// Ideal integer distance the array should report for (query, row),
  /// from the encoding alone (no devices) — the software reference.
  int nominal_distance(std::span<const int> query, std::size_t row) const;

  /// nominal_distance for every row at once: validates the query a single
  /// time, then runs the unchecked accumulation kernel — the nominal-
  /// fidelity hot path.
  std::vector<int> nominal_distances(std::span<const int> query) const;

  /// Post-variation threshold voltage of one device (for tests/analysis).
  double device_vth(std::size_t row, std::size_t dim, std::size_t fefet) const;

  /// Post-variation series resistance of one device.
  double device_resistance(std::size_t row, std::size_t dim,
                           std::size_t fefet) const;

 private:
  void validate_nominal_query(std::span<const int> query) const;
  int nominal_distance_unchecked(std::span<const int> query,
                                 std::size_t row) const;
  std::size_t device_index(std::size_t row, std::size_t dim,
                           std::size_t fefet) const noexcept {
    return (row * dims_ + dim) * fefets_per_cell_ + fefet;
  }
  double cell_current(std::size_t dev, double vgs_v, double vds_v) const;
  double row_current(std::size_t row, std::span<const double> vgs,
                     std::span<const double> vds) const;

  std::size_t rows_;
  std::size_t dims_;
  std::size_t fefets_per_cell_;
  encode::CellEncoding encoding_;
  device::VoltageLadder ladder_;
  CrossbarConfig config_;

  std::vector<double> vth_offsets_;   ///< per-device D2D Vth offset
  std::vector<double> resistances_;   ///< per-device series R (with spread)
  std::vector<double> vth_;           ///< programmed Vth (incl. offset)
  std::vector<int> stored_values_;    ///< per (row, dim) element value
};

}  // namespace ferex::circuit
