// Analytical wiring-parasitics model (stand-in for DESTINY @ 45 nm).
//
// FeReX's delay and energy scaling with array size is set by the RC load
// on the source lines (ScL, one per row, crossing all cells of the row)
// and the drain lines (DL, one per FeFET column, crossing all rows).
// We use per-micrometre wire constants typical of a 45 nm intermediate
// metal layer plus per-device junction loading.
#pragma once

#include <cstddef>

namespace ferex::circuit {

struct ParasiticParams {
  double cell_pitch_um = 0.6;        ///< 1FeFET1R cell pitch (BEOL resistor)
  double wire_cap_f_per_um = 0.20e-15;   ///< wire capacitance [F/um]
  double wire_res_ohm_per_um = 2.5;      ///< wire resistance [ohm/um]
  double junction_cap_f = 0.08e-15;      ///< per-device drain/source load [F]
};

/// RC totals for one FeReX array instance.
class Parasitics {
 public:
  /// @param rows            stored vectors (array rows)
  /// @param device_columns  total FeFET columns = dims * fefets_per_cell
  Parasitics(std::size_t rows, std::size_t device_columns,
             ParasiticParams params = {});

  std::size_t rows() const noexcept { return rows_; }
  std::size_t device_columns() const noexcept { return device_columns_; }
  const ParasiticParams& params() const noexcept { return params_; }

  /// Total capacitance loading one source line (one row). Grows with the
  /// number of device columns.
  double scl_cap_f() const noexcept;

  /// Total series resistance of one source line.
  double scl_res_ohm() const noexcept;

  /// Total capacitance loading one drain line (one device column). Grows
  /// with the number of rows.
  double dl_cap_f() const noexcept;

  /// Elmore-style RC time constant of the source line.
  double scl_tau_s() const noexcept { return 0.5 * scl_res_ohm() * scl_cap_f(); }

 private:
  std::size_t rows_;
  std::size_t device_columns_;
  ParasiticParams params_;
};

}  // namespace ferex::circuit
